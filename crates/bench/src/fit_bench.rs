//! Old-vs-new timings of the surrogate *fit* path, emitted as
//! `BENCH_fit.json` so later PRs can track the performance trajectory
//! (companion of the prediction-path benchmark in `BENCH_linalg.json`).
//!
//! Every entry compares a baseline fitting strategy against the optimized one
//! on the same data, and records the achieved negative log marginal
//! likelihood of both so the speedups are tied to fit quality:
//!
//! * `gp_fit_cold` — the pre-context reference fit (per-iteration Gram
//!   rebuilds, materialised `∂K/∂θ` matrices) vs the shared-context cold fit.
//! * `gp_refit_warm` — a cold multi-restart refit after one appended
//!   observation vs the warm-started refit from the previous optimum.
//! * `gp_fit_multi_cold` — sequential per-output cold fits vs the
//!   shared-context `fit_multi` on a 1-objective + 2-constraint problem
//!   (the threading only pays off on multi-core machines; the shared context
//!   alone is a small constant saving).
//! * `gp_fit_multi_warm` — the end-to-end BO-loop refresh contrast on the
//!   same 3-output problem: sequential cold fits (what `refresh_models` did
//!   before the multi-output path) vs `fit_multi_warm` seeded with the
//!   previous refit's hyper-parameters (what it does now).
//! * `symmetric_inverse` — one NLL-gradient evaluation (the body of every
//!   Adam iteration of a GP fit) with the dense-sweep `(K + σn²I)⁻¹`
//!   ([`nnbo_gp::InverseStrategy::DenseSweeps`]) vs the dpotri-style
//!   triangle-only inverse and trace pass
//!   ([`nnbo_gp::InverseStrategy::Symmetric`]); the NLL columns record both
//!   strategies' likelihoods at the same hyper-parameters (bit-close by the
//!   equivalence property tests).
//! * `ngp_refit_warm` — the paper's surrogate: a neural-GP refit after one
//!   appended observation, cold (full retraining of the feature network from
//!   random initialisation) vs warm-started continuation from the previous
//!   fit's flat parameters (`NeuralGp::fit_warm`).
//! * `ngp_ensemble_refit_warm` — the same contrast for the full K-member
//!   ensemble, every member continuing from its predecessor's weights
//!   (`NeuralGpEnsemble::fit_warm`); the NLL columns sum the members' final
//!   likelihoods.
//! * `refit_policy_nll_drift` — the surrogate lifecycle end to end
//!   ([`run_refit_lifecycle`]): a growing observation stream maintained by
//!   always-refit (`RefitPolicy::Fixed(1)`, baseline) vs the adaptive
//!   `RefitPolicy::NllDrift` (optimized), recording each strategy's final
//!   NLL and its count of full refits alongside the wall-clock contrast.

use std::time::Instant;

use nnbo_core::{EnsembleConfig, NeuralGp, NeuralGpConfig, NeuralGpEnsemble, RefitPolicy};
use nnbo_gp::{GpConfig, GpHyperParams, GpModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchError;

/// One measured comparison of the fit path, with the NLL both strategies
/// reached (summed over outputs for the multi-output workloads).
#[derive(Debug, Clone)]
pub struct FitBenchEntry {
    /// Workload name (e.g. `gp_refit_warm`).
    pub name: &'static str,
    /// Number of training points of the (re)fit being measured.
    pub n: usize,
    /// Number of outputs fitted over the shared design points.
    pub outputs: usize,
    /// Wall-clock nanoseconds of the baseline strategy (best of the reps).
    pub baseline_ns: f64,
    /// Wall-clock nanoseconds of the optimized strategy (best of the reps).
    pub optimized_ns: f64,
    /// NLL achieved by the baseline strategy (summed over outputs).
    pub baseline_nll: f64,
    /// NLL achieved by the optimized strategy (summed over outputs).
    pub optimized_nll: f64,
    /// `(baseline, optimized)` counts of *full* refits, for the
    /// surrogate-lifecycle workloads (`None` for single-fit workloads).
    pub refits: Option<(usize, usize)>,
}

impl FitBenchEntry {
    /// Speed-up factor of the optimized strategy.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns.max(1.0)
    }
}

/// Shared design points and target columns (one objective plus two
/// constraint-like outputs) for the fit-path measurements — used by both
/// `reproduce fit` and the `fit_path` criterion bench so they exercise the
/// same workload.
pub fn fit_dataset(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let rng = &mut StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    // Objective plus two constraint-like outputs over the same designs.
    let targets = vec![
        xs.iter()
            .map(|x| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| ((i + 1) as f64 * v).sin())
                    .sum()
            })
            .collect(),
        xs.iter()
            .map(|x| x.iter().map(|v| v * v).sum::<f64>() - 2.0)
            .collect(),
        xs.iter()
            .map(|x| (3.0 * x[0]).cos() + x[1] * x[2])
            .collect(),
    ];
    (xs, targets)
}

/// Times `f`, returning `(best_ns, last_result)` over `reps` repetitions.
fn time_best<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let start = Instant::now();
    let mut out = f();
    let mut best = start.elapsed().as_nanos() as f64;
    for _ in 1..reps.max(1) {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    (best, out)
}

/// Runs the fit-path comparison suite.  `quick` shrinks the training-set size
/// and optimizer effort so CI can smoke-test the harness in seconds.
pub fn run_fit_bench(quick: bool) -> Result<Vec<FitBenchEntry>, BenchError> {
    let n = if quick { 64 } else { 256 };
    let dim = 10;
    let config = if quick {
        GpConfig {
            max_iters: 30,
            warm_iters: 10,
            ..GpConfig::default()
        }
    } else {
        GpConfig::default()
    };
    let reps = if quick { 2 } else { 3 };
    let (xs, targets) = fit_dataset(n + 1, dim, 71);
    let xs_base: Vec<Vec<f64>> = xs[..n].to_vec();
    let targets_base: Vec<Vec<f64>> = targets.iter().map(|t| t[..n].to_vec()).collect();
    let objective = &targets_base[0];
    let mut entries = Vec::new();

    // 1. Cold fit: reference implementation vs shared-context pipeline.
    let (ref_ns, ref_model) = time_best(reps, || {
        GpModel::fit_reference(&xs_base, objective, &config, &mut StdRng::seed_from_u64(5))
    });
    let ref_model = ref_model?;
    let (cold_ns, cold_model) = time_best(reps, || {
        GpModel::fit(&xs_base, objective, &config, &mut StdRng::seed_from_u64(5))
    });
    let cold_model = cold_model?;
    entries.push(FitBenchEntry {
        name: "gp_fit_cold",
        n,
        outputs: 1,
        baseline_ns: ref_ns,
        optimized_ns: cold_ns,
        baseline_nll: ref_model.nll(),
        optimized_nll: cold_model.nll(),
        refits: None,
    });

    // 2. Refit after one appended observation: cold restart schedule vs
    //    warm start from the previous optimum.
    let objective_ext = &targets[0];
    let (refit_cold_ns, refit_cold) = time_best(reps, || {
        GpModel::fit(&xs, objective_ext, &config, &mut StdRng::seed_from_u64(6))
    });
    let refit_cold = refit_cold?;
    let warm_hyper = cold_model.hyper_params().clone();
    let (refit_warm_ns, refit_warm) = time_best(reps, || {
        GpModel::fit_warm(
            &xs,
            objective_ext,
            &config,
            &mut StdRng::seed_from_u64(6),
            Some(&warm_hyper),
        )
    });
    let refit_warm = refit_warm?;
    entries.push(FitBenchEntry {
        name: "gp_refit_warm",
        n: n + 1,
        outputs: 1,
        baseline_ns: refit_cold_ns,
        optimized_ns: refit_warm_ns,
        baseline_nll: refit_cold.nll(),
        optimized_nll: refit_warm.nll(),
        refits: None,
    });

    // 3. Multi-output cold: sequential per-output fits vs one shared-context
    //    fit_multi call (same cold optimizer schedule per output).
    let multi_reps = if quick { 2 } else { 3 };
    let nll_sum = |models: &[GpModel]| models.iter().map(GpModel::nll).sum::<f64>();
    let (seq_cold_ns, seq_cold) = time_best(multi_reps, || {
        let mut fit_rng = StdRng::seed_from_u64(7);
        targets_base
            .iter()
            .map(|ys| {
                let seed: u64 = fit_rng.gen();
                GpModel::fit(&xs_base, ys, &config, &mut StdRng::seed_from_u64(seed))
            })
            .collect::<Result<Vec<_>, _>>()
    });
    let seq_cold = seq_cold?;
    let (multi_cold_ns, multi_cold) = time_best(multi_reps, || {
        GpModel::fit_multi(
            &xs_base,
            &targets_base,
            &config,
            &mut StdRng::seed_from_u64(7),
        )
    });
    let multi_cold = multi_cold?;
    entries.push(FitBenchEntry {
        name: "gp_fit_multi_cold",
        n,
        outputs: targets_base.len(),
        baseline_ns: seq_cold_ns,
        optimized_ns: multi_cold_ns,
        baseline_nll: nll_sum(&seq_cold),
        optimized_nll: nll_sum(&multi_cold),
        refits: None,
    });

    // 4. The BO-loop refresh contrast: sequential cold fits over the extended
    //    data (the pre-multi-output refresh_models path) vs fit_multi_warm
    //    seeded with the previous refit's hyper-parameters.
    let (refresh_cold_ns, refresh_cold) = time_best(multi_reps, || {
        let mut fit_rng = StdRng::seed_from_u64(8);
        targets
            .iter()
            .map(|ys| GpModel::fit(&xs, ys, &config, &mut fit_rng))
            .collect::<Result<Vec<_>, _>>()
    });
    let refresh_cold = refresh_cold?;
    let warm_hypers: Vec<Option<GpHyperParams>> = multi_cold
        .iter()
        .map(|m| Some(m.hyper_params().clone()))
        .collect();
    let (refresh_warm_ns, refresh_warm) = time_best(multi_reps, || {
        GpModel::fit_multi_warm(
            &xs,
            &targets,
            &config,
            &mut StdRng::seed_from_u64(8),
            &warm_hypers,
        )
    });
    let refresh_warm = refresh_warm?;
    entries.push(FitBenchEntry {
        name: "gp_fit_multi_warm",
        n: n + 1,
        outputs: targets.len(),
        baseline_ns: refresh_cold_ns,
        optimized_ns: refresh_warm_ns,
        baseline_nll: nll_sum(&refresh_cold),
        optimized_nll: nll_sum(&refresh_warm),
        refits: None,
    });

    // 5. The per-iteration core of every fit above: one NLL-gradient
    //    evaluation with the dense-sweep inverse vs the dpotri-style
    //    symmetric inverse + triangle-only trace pass.
    {
        use nnbo_gp::{nll_and_grad_with, FitContext, FitScratch, GpHyperParams, InverseStrategy};
        let x = nnbo_linalg::Matrix::from_rows(&xs_base);
        let (y_std, _) = nnbo_linalg::standardize(objective);
        let ctx = FitContext::new(&x);
        let mut scratch = FitScratch::new(n, dim);
        let hyper = GpHyperParams {
            log_signal: 0.2,
            log_lengthscales: vec![0.0; dim],
            log_noise: -2.5,
            mean: 0.0,
        };
        let grad_reps = if quick { 3 } else { 5 };
        let (dense_ns, dense_nll) = time_best(grad_reps, || {
            nll_and_grad_with(
                &ctx,
                &y_std,
                &hyper,
                config.jitter,
                &mut scratch,
                InverseStrategy::DenseSweeps,
            )
        });
        let dense_nll = dense_nll.ok_or("dense-sweep NLL evaluation failed")?;
        let (sym_ns, sym_nll) = time_best(grad_reps, || {
            nll_and_grad_with(
                &ctx,
                &y_std,
                &hyper,
                config.jitter,
                &mut scratch,
                InverseStrategy::Symmetric,
            )
        });
        let sym_nll = sym_nll.ok_or("symmetric-inverse NLL evaluation failed")?;
        entries.push(FitBenchEntry {
            name: "symmetric_inverse",
            n,
            outputs: 1,
            baseline_ns: dense_ns,
            optimized_ns: sym_ns,
            baseline_nll: dense_nll,
            optimized_nll: sym_nll,
            refits: None,
        });
    }

    // 6. The paper's surrogate: neural-GP refit after one appended
    //    observation — cold retraining from random initialisation vs the
    //    warm-started continuation of the previous network.
    let ngp_config = if quick {
        NeuralGpConfig {
            epochs: 40,
            warm_epochs: 12,
            ..NeuralGpConfig::fast()
        }
    } else {
        NeuralGpConfig::default()
    };
    let ngp_n = if quick { 32 } else { n };
    let (nxs, ntargets) = fit_dataset(ngp_n + 1, dim, 91);
    let nys = &ntargets[0];
    let nxs_base: Vec<Vec<f64>> = nxs[..ngp_n].to_vec();
    let nys_base: Vec<f64> = nys[..ngp_n].to_vec();
    let prev_single = NeuralGp::fit(
        &nxs_base,
        &nys_base,
        &ngp_config,
        &mut StdRng::seed_from_u64(17),
    )?;
    let (ngp_cold_ns, ngp_cold) = time_best(reps, || {
        NeuralGp::fit(&nxs, nys, &ngp_config, &mut StdRng::seed_from_u64(18))
    });
    let ngp_cold = ngp_cold?;
    let (ngp_warm_ns, ngp_warm) = time_best(reps, || {
        NeuralGp::fit_warm(
            &nxs,
            nys,
            &ngp_config,
            &mut StdRng::seed_from_u64(18),
            Some(&prev_single),
        )
    });
    let ngp_warm = ngp_warm?;
    entries.push(FitBenchEntry {
        name: "ngp_refit_warm",
        n: ngp_n + 1,
        outputs: 1,
        baseline_ns: ngp_cold_ns,
        optimized_ns: ngp_warm_ns,
        baseline_nll: ngp_cold.nll(),
        optimized_nll: ngp_warm.nll(),
        refits: None,
    });

    // 7. The same contrast for the K-member ensemble (eq. 13), every member
    //    continuing Adam from its predecessor's weights.
    let ens_config = EnsembleConfig {
        members: if quick { 2 } else { 3 },
        member_config: ngp_config.clone(),
        parallel: true,
    };
    let member_nll_sum = |e: &NeuralGpEnsemble| e.members().iter().map(NeuralGp::nll).sum::<f64>();
    let prev_ens = NeuralGpEnsemble::fit(
        &nxs_base,
        &nys_base,
        &ens_config,
        &mut StdRng::seed_from_u64(19),
    )?;
    let (ens_cold_ns, ens_cold) = time_best(reps, || {
        NeuralGpEnsemble::fit(&nxs, nys, &ens_config, &mut StdRng::seed_from_u64(20))
    });
    let ens_cold = ens_cold?;
    let (ens_warm_ns, ens_warm) = time_best(reps, || {
        NeuralGpEnsemble::fit_warm(
            &nxs,
            nys,
            &ens_config,
            &mut StdRng::seed_from_u64(20),
            Some(&prev_ens),
        )
    });
    let ens_warm = ens_warm?;
    entries.push(FitBenchEntry {
        name: "ngp_ensemble_refit_warm",
        n: ngp_n + 1,
        outputs: 1,
        baseline_ns: ens_cold_ns,
        optimized_ns: ens_warm_ns,
        baseline_nll: member_nll_sum(&ens_cold),
        optimized_nll: member_nll_sum(&ens_warm),
        refits: None,
    });

    // 8. The surrogate lifecycle end to end: the same growing observation
    //    stream maintained with always-refit (`Fixed(1)`) vs the adaptive
    //    NLL-drift policy, which absorbs most observations through the
    //    bordered-Cholesky update and refits only when the incremental
    //    model's per-point likelihood drifts.  The NLL columns record each
    //    strategy's *final* model likelihood (the acceptance check: drift
    //    stays within ~1% of always-refit at a fraction of the full fits).
    let life_start = if quick { 24 } else { 64 };
    let life_end = if quick { 40 } else { 160 };
    let (life_xs, life_targets) = fit_dataset(life_end, dim, 131);
    let life_ys = &life_targets[0];
    let (fixed_ns, fixed) = time_best(1, || {
        run_refit_lifecycle(
            &life_xs,
            life_ys,
            &config,
            RefitPolicy::Fixed(1),
            life_start,
            41,
        )
    });
    let fixed = fixed?;
    // Per-point NLL moves more per appended observation at smoke scale, so
    // the quick threshold is proportionally looser; the full-run threshold
    // keeps the final NLL within a fraction of a percent of always-refit.
    let drift_policy = RefitPolicy::NllDrift {
        threshold: if quick { 0.05 } else { 0.004 },
        min_gap: 1,
        max_gap: 12,
    };
    let (drift_ns, drift) = time_best(1, || {
        run_refit_lifecycle(&life_xs, life_ys, &config, drift_policy, life_start, 41)
    });
    let drift = drift?;
    entries.push(FitBenchEntry {
        name: "refit_policy_nll_drift",
        n: life_end,
        outputs: 1,
        baseline_ns: fixed_ns,
        optimized_ns: drift_ns,
        baseline_nll: fixed.final_nll,
        optimized_nll: drift.final_nll,
        refits: Some((fixed.full_refits, drift.full_refits)),
    });

    Ok(entries)
}

/// End state of one surrogate-lifecycle run ([`run_refit_lifecycle`]).
#[derive(Debug, Clone, Copy)]
pub struct LifecycleOutcome {
    /// NLL of the final model (standardised units; for a drift run the final
    /// model may be an incremental one under frozen hyper-parameters).
    pub final_nll: f64,
    /// Full (hyper-parameter) refits performed after the initial fit.
    pub full_refits: usize,
}

/// Drives a growing observation stream through exactly the refit decision
/// rule the Bayesian-optimization loop applies ([`RefitPolicy::due`]): fit on
/// the first `initial` points, then absorb `xs[initial..]` one at a time —
/// bordered-Cholesky append plus drift measurement, full warm refit (shared
/// fit context, warm-started hyper-parameters) when the policy says so.
/// Shared by `reproduce fit` and the surrogate-lifecycle test harness.
///
/// # Errors
///
/// Propagates the first failed fit.
///
/// # Panics
///
/// Panics if `initial` is zero or exceeds `xs.len()`.
pub fn run_refit_lifecycle(
    xs: &[Vec<f64>],
    ys: &[f64],
    config: &GpConfig,
    policy: RefitPolicy,
    initial: usize,
    seed: u64,
) -> Result<LifecycleOutcome, BenchError> {
    assert!(initial > 0 && initial <= xs.len(), "bad initial size");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = None;
    let full_fit = |n: usize,
                    warm: Option<GpHyperParams>,
                    rng: &mut StdRng,
                    cache: &mut Option<nnbo_gp::FitContext>| {
        Ok::<GpModel, BenchError>(
            GpModel::fit_multi_warm_cached(
                &xs[..n],
                &[ys[..n].to_vec()],
                config,
                rng,
                &[warm],
                cache,
            )?
            .remove(0),
        )
    };
    let mut model = full_fit(initial, None, &mut rng, &mut cache)?;
    let mut full_refits = 0usize;
    let mut last_full_fit = initial;
    let mut fit_nll_per_point = model.nll() / initial as f64;
    for n in (initial + 1)..=xs.len() {
        let gap = n - last_full_fit;
        // Exactly like the BO loop's refresh: a fixed cadence that is due —
        // or a drift policy at its max_gap boundary — skips the incremental
        // attempt; otherwise the drift policy appends first so the refreshed
        // likelihood is there to measure.
        let due_without_append = match policy {
            RefitPolicy::Fixed(_) => policy.due(gap, None),
            RefitPolicy::NllDrift { max_gap, .. } => gap >= max_gap.max(1),
        };
        let mut needs_full = due_without_append;
        if !due_without_append {
            match model.append_observation(&xs[n - 1], ys[n - 1]) {
                Ok(updated) => {
                    let drift = (updated.nll() / n as f64 - fit_nll_per_point).abs();
                    needs_full = policy.due(gap, Some(drift));
                    model = updated;
                }
                Err(_) => needs_full = true,
            }
        }
        if needs_full {
            let warm = Some(model.hyper_params().clone());
            model = full_fit(n, warm, &mut rng, &mut cache)?;
            full_refits += 1;
            last_full_fit = n;
            fit_nll_per_point = model.nll() / n as f64;
        }
    }
    Ok(LifecycleOutcome {
        final_nll: model.nll(),
        full_refits,
    })
}

/// Serialises the entries as the `BENCH_fit.json` document (JSON written by
/// hand — the workspace's serde is an offline no-op stand-in).
pub fn format_fit_json(entries: &[FitBenchEntry], quick: bool) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            let refit_fields = match e.refits {
                Some((baseline, optimized)) => format!(
                    ", \"baseline_full_refits\": {baseline}, \"optimized_full_refits\": {optimized}"
                ),
                None => String::new(),
            };
            format!(
                "{{\"name\": \"{}\", \"n\": {}, \"outputs\": {}, \"baseline_ns\": {:.0}, \"optimized_ns\": {:.0}, \"speedup\": {:.2}, \"baseline_nll\": {}, \"optimized_nll\": {}{}}}",
                e.name,
                e.n,
                e.outputs,
                e.baseline_ns,
                e.optimized_ns,
                e.speedup(),
                crate::json::number(e.baseline_nll),
                crate::json::number(e.optimized_nll),
                refit_fields,
            )
        })
        .collect();
    crate::json::document("nnbo-bench-fit-v1", "fit", quick, "entries", &rows)
}

/// Renders a human-readable table of the same entries for stdout.
pub fn format_fit_table(entries: &[FitBenchEntry]) -> String {
    let mut out = format!(
        "{:<20} {:>6} {:>8} {:>15} {:>15} {:>9} {:>12} {:>12}\n",
        "workload",
        "N",
        "outputs",
        "baseline (ms)",
        "optimized (ms)",
        "speedup",
        "base NLL",
        "opt NLL"
    );
    for e in entries {
        out.push_str(&format!(
            "{:<20} {:>6} {:>8} {:>15.1} {:>15.1} {:>8.1}x {:>12.2} {:>12.2}",
            e.name,
            e.n,
            e.outputs,
            e.baseline_ns / 1e6,
            e.optimized_ns / 1e6,
            e.speedup(),
            e.baseline_nll,
            e.optimized_nll,
        ));
        if let Some((baseline, optimized)) = e.refits {
            out.push_str(&format!("  (full refits: {baseline} -> {optimized})"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_all_workloads_and_valid_json() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let entries = run_fit_bench(true).expect("quick fit bench runs");
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        for expected in [
            "gp_fit_cold",
            "gp_refit_warm",
            "gp_fit_multi_cold",
            "gp_fit_multi_warm",
            "symmetric_inverse",
            "ngp_refit_warm",
            "ngp_ensemble_refit_warm",
            "refit_policy_nll_drift",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
        for e in &entries {
            assert!(e.baseline_nll.is_finite() && e.optimized_nll.is_finite());
        }
        let lifecycle = entries
            .iter()
            .find(|e| e.name == "refit_policy_nll_drift")
            .unwrap();
        let (fixed_refits, drift_refits) = lifecycle.refits.unwrap();
        assert!(
            drift_refits < fixed_refits,
            "drift policy performed {drift_refits} full refits vs always-refit's {fixed_refits}"
        );
        let json = format_fit_json(&entries, true);
        assert!(json.contains("\"baseline_full_refits\""));
        assert!(json.contains("\"schema\": \"nnbo-bench-fit-v1\""));
        assert_eq!(json.matches("\"name\"").count(), entries.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!format_fit_table(&entries).is_empty());
    }
}
