//! Old-vs-new timings of the surrogate hot path, emitted as
//! `BENCH_linalg.json` so later PRs can track the performance trajectory.
//!
//! Every entry compares the pre-existing reference implementation (scalar
//! loops, per-point predictions, from-scratch refactorizations) against the
//! blocked / batched / incremental path that replaced it on the same inputs:
//!
//! * `matmul`, `matmul_transpose`, `cholesky` — blocked + threaded kernels vs
//!   the naive loops, at N ∈ {64, 256, 1024}.
//! * `matmul_kernel`, `syrk`, `symmetric_inverse` — the packed-panel
//!   AVX2+FMA micro-kernels vs the portable blocked-scalar kernels on the
//!   same shapes (forced through [`nnbo_linalg::force_portable_kernels`]),
//!   at N ∈ {256, 512, 1024}.  On machines without AVX2 both sides run the
//!   portable path and the speedup reads ≈ 1 — the document's `isa` header
//!   says which case applies.
//! * `cholesky_append` — rank-1 bordered update vs full refactorization when
//!   one row/column is appended at N = 512.
//! * `gp_predict_batch` / `neural_predict_batch` — one batched prediction of
//!   512 candidates vs 512 per-point `predict` calls at 256 training points.

use std::time::Instant;

use nnbo_core::{NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{GpConfig, GpModel};
use nnbo_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BenchError;

/// One measured comparison: the reference path vs the optimized path on the
/// same workload.
#[derive(Debug, Clone)]
pub struct LinalgBenchEntry {
    /// Workload name (e.g. `matmul`).
    pub name: &'static str,
    /// Problem size N.
    pub n: usize,
    /// Wall-clock nanoseconds of the reference path (best of the repetitions).
    pub baseline_ns: f64,
    /// Wall-clock nanoseconds of the optimized path (best of the repetitions).
    pub optimized_ns: f64,
}

impl LinalgBenchEntry {
    /// Speed-up factor of the optimized path.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns.max(1.0)
    }
}

/// Times `f`, returning the best (minimum) wall-clock nanoseconds over `reps`
/// repetitions.  The minimum is the standard choice for micro-benchmarks: it
/// is the least noisy estimator of the true cost of the work itself.
/// Shared with the prediction-path benchmark (`predict_bench`).
pub(crate) fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// [`time_best`] for fallible workloads: the first error aborts the
/// measurement and propagates to the `reproduce` binary instead of
/// panicking mid-benchmark.
fn try_time_best<F: FnMut() -> Result<(), BenchError>>(
    reps: usize,
    mut f: F,
) -> Result<f64, BenchError> {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f()?;
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    Ok(best)
}

fn random_matrix(n: usize, m: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f64> = (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(n, m, data)
}

fn random_spd(n: usize, rng: &mut StdRng) -> Matrix {
    let b = random_matrix(n, n, rng);
    let mut a = b.matmul_transpose(&b);
    a.add_diag(n as f64);
    a
}

fn dataset(n: usize, dim: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            x.iter()
                .enumerate()
                .map(|(i, v)| ((i + 1) as f64 * v).sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

/// Runs the full comparison suite.  `quick` shrinks the sizes and repetition
/// counts so CI can smoke-test the harness in seconds.
pub fn run_linalg_bench(quick: bool) -> Result<Vec<LinalgBenchEntry>, BenchError> {
    let mut rng = StdRng::seed_from_u64(97);
    let mut entries = Vec::new();
    let matmul_sizes: &[usize] = if quick { &[64, 128] } else { &[64, 256, 1024] };
    let reps = |n: usize| if quick || n >= 1024 { 3 } else { 7 };

    for &n in matmul_sizes {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        entries.push(LinalgBenchEntry {
            name: "matmul",
            n,
            baseline_ns: time_best(reps(n), || {
                std::hint::black_box(a.matmul_naive(&b));
            }),
            optimized_ns: time_best(reps(n), || {
                std::hint::black_box(a.matmul(&b));
            }),
        });
        entries.push(LinalgBenchEntry {
            name: "matmul_transpose",
            n,
            baseline_ns: time_best(reps(n), || {
                std::hint::black_box(a.matmul_transpose_naive(&b));
            }),
            optimized_ns: time_best(reps(n), || {
                std::hint::black_box(a.matmul_transpose(&b));
            }),
        });
        let spd = random_spd(n, &mut rng);
        entries.push(LinalgBenchEntry {
            name: "cholesky",
            n,
            baseline_ns: try_time_best(reps(n), || {
                std::hint::black_box(Cholesky::decompose_reference(&spd)?);
                Ok(())
            })?,
            optimized_ns: try_time_best(reps(n), || {
                std::hint::black_box(Cholesky::decompose(&spd)?);
                Ok(())
            })?,
        });
    }

    // Micro-kernel vs blocked-scalar: the same public entry points with the
    // dispatch forced portable (baseline) and automatic (optimized).
    let kernel_sizes: &[usize] = if quick { &[64, 128] } else { &[256, 512, 1024] };
    for &n in kernel_sizes {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        nnbo_linalg::force_portable_kernels(true);
        let portable_matmul = time_best(reps(n), || {
            std::hint::black_box(a.matmul(&b));
        });
        let portable_syrk = time_best(reps(n), || {
            std::hint::black_box(a.transpose_matmul_self());
        });
        let spd = random_spd(n, &mut rng);
        let chol = Cholesky::decompose(&spd)?;
        let mut inv = nnbo_linalg::Matrix::zeros(n, n);
        let mut work = nnbo_linalg::Matrix::zeros(n, n);
        let portable_syminv = time_best(reps(n), || {
            chol.symmetric_inverse_into(&mut inv, &mut work);
            std::hint::black_box(&inv);
        });
        nnbo_linalg::force_portable_kernels(false);
        let auto_matmul = time_best(reps(n), || {
            std::hint::black_box(a.matmul(&b));
        });
        let auto_syrk = time_best(reps(n), || {
            std::hint::black_box(a.transpose_matmul_self());
        });
        let dense_inverse = time_best(reps(n), || {
            chol.inverse_into(&mut inv);
            std::hint::black_box(&inv);
        });
        let auto_syminv = time_best(reps(n), || {
            chol.symmetric_inverse_into(&mut inv, &mut work);
            std::hint::black_box(&inv);
        });
        entries.push(LinalgBenchEntry {
            name: "matmul_kernel",
            n,
            baseline_ns: portable_matmul,
            optimized_ns: auto_matmul,
        });
        entries.push(LinalgBenchEntry {
            name: "syrk",
            n,
            baseline_ns: portable_syrk,
            optimized_ns: auto_syrk,
        });
        // Two contrasts for the dpotri-style inverse: vs the dense-sweep
        // inverse on the same (auto) dispatch path, and vs its own portable
        // fallback.
        entries.push(LinalgBenchEntry {
            name: "symmetric_inverse",
            n,
            baseline_ns: dense_inverse,
            optimized_ns: auto_syminv,
        });
        entries.push(LinalgBenchEntry {
            name: "symmetric_inverse_kernel",
            n,
            baseline_ns: portable_syminv,
            optimized_ns: auto_syminv,
        });
    }

    // Appending one observation: full refactorization vs rank-1 bordered update.
    let append_n = if quick { 128 } else { 512 };
    let spd = random_spd(append_n + 1, &mut rng);
    let mut small = Matrix::zeros(append_n, append_n);
    for i in 0..append_n {
        for j in 0..append_n {
            small[(i, j)] = spd[(i, j)];
        }
    }
    let border: Vec<f64> = (0..=append_n).map(|j| spd[(append_n, j)]).collect();
    let base = Cholesky::decompose(&small)?;
    // The update mutates, so each repetition needs a fresh factor; clone
    // outside the timed window so only `append_row` itself is measured.
    let append_reps = if quick { 3 } else { 5 };
    let mut append_best = f64::INFINITY;
    for _ in 0..append_reps {
        let mut c = base.clone();
        let start = Instant::now();
        c.append_row(&border)?;
        append_best = append_best.min(start.elapsed().as_nanos() as f64);
        std::hint::black_box(c);
    }
    entries.push(LinalgBenchEntry {
        name: "cholesky_append",
        n: append_n,
        baseline_ns: try_time_best(append_reps, || {
            std::hint::black_box(Cholesky::decompose(&spd)?);
            Ok(())
        })?,
        optimized_ns: append_best,
    });

    // Batched candidate scoring vs per-point prediction, classic GP.
    let train_n = if quick { 64 } else { 256 };
    let batch = if quick { 128 } else { 512 };
    let dim = 10;
    let (xs, ys) = dataset(train_n, dim, &mut rng);
    let queries: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let gp_config = GpConfig {
        restarts: 1,
        max_iters: 10,
        ..GpConfig::default()
    };
    let mut fit_rng = StdRng::seed_from_u64(3);
    let gp = GpModel::fit(&xs, &ys, &gp_config, &mut fit_rng)?;
    entries.push(LinalgBenchEntry {
        name: "gp_predict_batch",
        n: train_n,
        baseline_ns: time_best(if quick { 3 } else { 5 }, || {
            for q in &queries {
                std::hint::black_box(gp.predict(q));
            }
        }),
        optimized_ns: time_best(if quick { 3 } else { 5 }, || {
            std::hint::black_box(gp.predict_batch(&queries));
        }),
    });

    // Batched candidate scoring vs per-point prediction, neural GP.
    let nn_config = NeuralGpConfig {
        epochs: 40,
        ..NeuralGpConfig::default()
    };
    let mut fit_rng = StdRng::seed_from_u64(4);
    let neural = NeuralGp::fit(&xs, &ys, &nn_config, &mut fit_rng)?;
    entries.push(LinalgBenchEntry {
        name: "neural_predict_batch",
        n: train_n,
        baseline_ns: time_best(if quick { 3 } else { 5 }, || {
            for q in &queries {
                std::hint::black_box(neural.predict(q));
            }
        }),
        optimized_ns: time_best(if quick { 3 } else { 5 }, || {
            std::hint::black_box(neural.predict_batch(&queries));
        }),
    });

    Ok(entries)
}

/// Serialises the entries as the `BENCH_linalg.json` document (JSON written by
/// hand — the workspace's serde is an offline no-op stand-in).
pub fn format_linalg_json(entries: &[LinalgBenchEntry], quick: bool) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"name\": \"{}\", \"n\": {}, \"baseline_ns\": {:.0}, \"optimized_ns\": {:.0}, \"speedup\": {:.2}}}",
                e.name,
                e.n,
                e.baseline_ns,
                e.optimized_ns,
                e.speedup(),
            )
        })
        .collect();
    crate::json::document("nnbo-bench-linalg-v1", "linalg", quick, "entries", &rows)
}

/// Renders a human-readable table of the same entries for stdout.
pub fn format_linalg_table(entries: &[LinalgBenchEntry]) -> String {
    let mut out = format!(
        "{:<22} {:>6} {:>16} {:>16} {:>9}\n",
        "workload", "N", "baseline (ms)", "optimized (ms)", "speedup"
    );
    for e in entries {
        out.push_str(&format!(
            "{:<22} {:>6} {:>16.3} {:>16.3} {:>8.1}x\n",
            e.name,
            e.n,
            e.baseline_ns / 1e6,
            e.optimized_ns / 1e6,
            e.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_all_workloads_and_valid_json() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let entries = run_linalg_bench(true).expect("quick linalg bench runs");
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        for expected in [
            "matmul",
            "matmul_transpose",
            "cholesky",
            "matmul_kernel",
            "syrk",
            "symmetric_inverse",
            "symmetric_inverse_kernel",
            "cholesky_append",
            "gp_predict_batch",
            "neural_predict_batch",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
        let json = format_linalg_json(&entries, true);
        assert!(json.contains("\"schema\": \"nnbo-bench-linalg-v1\""));
        assert_eq!(json.matches("\"name\"").count(), entries.len());
        // Crude structural validity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!format_linalg_table(&entries).is_empty());
    }
}
