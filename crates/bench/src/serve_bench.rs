//! Serving-layer benchmark: throughput, tail latency, crash recovery and
//! load shedding of the supervised multi-session service (`nnbo-serve`),
//! emitted as `BENCH_serve.json`.
//!
//! Four sections:
//!
//! * **throughput** — N concurrent neural-GP sessions driven end to end
//!   through the service on the shared worker pool: sessions/second, p50 and
//!   p99 per-step latency (step compute + checkpoint persist), and a
//!   bit-identity check of every session's history against the same driver
//!   run sequentially without the service.
//! * **overhead** — the supervision tax: one session run through the service
//!   (job scheduling, panic isolation, admission bookkeeping, latency
//!   accounting) vs the same driver stepped in a bare loop that persists an
//!   identical checkpoint per step to the same kind of store.  The budget is
//!   < 2 % on a full run.
//! * **recovery** — M sessions killed mid-flight by the deterministic
//!   kill-switch fail-point (process death between compute and persist),
//!   then recovered by a fresh service over the same store: time to re-admit
//!   every session from its last intact checkpoint, time to replay to
//!   completion, steps lost to the kill (at most one in-flight step per
//!   worker), and a bit-identity check of the recovered histories.
//! * **shedding** — the admission-control counters under scripted overload:
//!   a full pool of wedged evaluations forces an `Overloaded` rejection,
//!   then an idle session is checkpointed-and-parked to admit a newcomer and
//!   later resumed to completion.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{BayesOpt, BoConfig, EnsembleConfig, Evaluation, NeuralGpEnsembleTrainer, Problem};
use nnbo_serve::{BoService, ServeConfig, ServeError, SessionStatus, SessionStore};

use crate::json;
use crate::BenchError;

/// Everything `BENCH_serve.json` reports.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Concurrent sessions of the throughput section.
    pub sessions: usize,
    /// Evaluation budget of every session.
    pub evals_per_session: usize,
    /// Wall time of the throughput section (milliseconds).
    pub wall_ms: f64,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Median per-step latency (compute + persist) in milliseconds.
    pub p50_step_ms: f64,
    /// 99th-percentile per-step latency in milliseconds.
    pub p99_step_ms: f64,
    /// Whether every concurrently-served history matched the sequential run.
    pub throughput_bit_identical: bool,
    /// Bare start/step/persist loop, best of the reps (milliseconds).
    pub bare_loop_ms: f64,
    /// The same session through the service, best of the reps (milliseconds).
    pub supervised_ms: f64,
    /// Supervision overhead as a percent of the bare loop (clamped at 0).
    pub supervision_overhead_pct: f64,
    /// Sessions killed mid-flight and recovered.
    pub killed_sessions: usize,
    /// Computed steps the kill switch discarded before persist.
    pub steps_lost_to_kill: usize,
    /// Time for the fresh service to re-admit every session from its last
    /// intact checkpoint (milliseconds).
    pub recover_ms: f64,
    /// Time to replay every recovered session to completion (milliseconds).
    pub replay_ms: f64,
    /// Whether every recovered history matched the sequential run.
    pub recovery_bit_identical: bool,
    /// Sessions checkpointed-and-parked under overload.
    pub sessions_parked: usize,
    /// Parked sessions later re-admitted.
    pub sessions_unparked: usize,
    /// Submissions rejected with explicit backpressure.
    pub overload_rejections: usize,
    /// Whether the parked session ran to completion after resumption.
    pub parked_session_completed: bool,
}

fn bench_config(quick: bool, seed: u64) -> BoConfig {
    if quick {
        BoConfig::fast(6, 10).with_seed(seed)
    } else {
        BoConfig::new(10, 30).with_seed(seed)
    }
}

fn driver(quick: bool, seed: u64) -> BayesOpt<NeuralGpEnsembleTrainer> {
    let ensemble = if quick {
        EnsembleConfig::fast()
    } else {
        EnsembleConfig::default()
    };
    BayesOpt::neural_with(bench_config(quick, seed), ensemble)
}

fn scratch_store(tag: &str) -> Result<SessionStore, ServeError> {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nnbo-serve-bench-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SessionStore::open(dir)
}

fn discard_store(store: &SessionStore) {
    let _ = std::fs::remove_dir_all(store.dir());
}

/// The evaluations the same driver produces without any service around it.
fn sequential_reference(quick: bool, seed: u64) -> Result<Vec<(Vec<f64>, Evaluation)>, BenchError> {
    Ok(driver(quick, seed)
        .run(&ConstrainedBranin::new())?
        .evaluations()
        .to_vec())
}

/// Wedges every evaluation until released (and flags when the first one has
/// actually entered), so the shedding section can hold workers busy
/// deterministically instead of racing a timer.
struct GatedProblem {
    inner: ConstrainedBranin,
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicBool,
}

impl GatedProblem {
    fn new() -> Arc<Self> {
        Arc::new(GatedProblem {
            inner: ConstrainedBranin::new(),
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicBool::new(false),
        })
    }

    fn release(&self) {
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        *open = true;
        self.cv.notify_all();
    }

    /// Waits (bounded) until an evaluation is actually blocked inside.
    fn wait_entered(&self) -> Result<(), BenchError> {
        let start = Instant::now();
        while !self.entered.load(Ordering::SeqCst) {
            if start.elapsed() > Duration::from_secs(30) {
                return Err("gated evaluation never started".into());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

impl Problem for GatedProblem {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.entered.store(true, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        while !*open {
            open = self.cv.wait(open).unwrap_or_else(|p| p.into_inner());
        }
        drop(open);
        self.inner.evaluate(x)
    }
}

fn session_id(i: usize) -> String {
    format!("bench-{i}")
}

/// Runs the four sections and assembles the report.
pub fn run_serve_bench(quick: bool) -> Result<ServeBenchReport, BenchError> {
    let sessions = if quick { 2 } else { 6 };
    let killed_sessions = if quick { 2 } else { 3 };
    let evals_per_session = bench_config(quick, 0).max_evaluations;
    let problem: Arc<dyn Problem + Send + Sync> = Arc::new(ConstrainedBranin::new());
    let seed = |i: usize| 300 + i as u64;

    // Sequential references for the bit-identity checks (the recovery
    // section reuses the first `killed_sessions` of them).
    let mut references = Vec::with_capacity(sessions);
    for i in 0..sessions {
        references.push(sequential_reference(quick, seed(i))?);
    }

    // --- throughput section ------------------------------------------------
    let store = scratch_store("throughput")?;
    let service = BoService::new(
        store,
        ServeConfig {
            max_sessions: sessions,
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    for i in 0..sessions {
        service.submit(&session_id(i), driver(quick, seed(i)), Arc::clone(&problem))?;
    }
    service.drain();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut throughput_bit_identical = true;
    for (i, reference) in references.iter().enumerate() {
        if service.status(&session_id(i))? != SessionStatus::Completed
            || service.history(&session_id(i))? != *reference
        {
            throughput_bit_identical = false;
        }
    }
    let sessions_per_sec = sessions as f64 / (wall_ms / 1e3).max(1e-9);
    let p50_step_ms = service.step_latency_ms(50.0).unwrap_or(f64::NAN);
    let p99_step_ms = service.step_latency_ms(99.0).unwrap_or(f64::NAN);
    discard_store(service.store());
    drop(service);

    // --- overhead section --------------------------------------------------
    // The same single-session workload with and without the service around
    // it; both persist one checkpoint per step through the same store
    // machinery, so the delta is exactly the supervision layer.
    let reps = if quick { 2 } else { 5 };
    let mut bare_loop_ms = f64::INFINITY;
    for _ in 0..reps {
        let store = scratch_store("bare")?;
        let bo = driver(quick, seed(0));
        let start = Instant::now();
        let mut state = bo.start(problem.as_ref())?;
        store.persist("bench-0", &bo.snapshot(&state).to_json())?;
        while bo.step(problem.as_ref(), &mut state)? {
            store.persist("bench-0", &bo.snapshot(&state).to_json())?;
        }
        store.persist("bench-0", &bo.snapshot(&state).to_json())?;
        let result = bo.finish(state);
        bare_loop_ms = bare_loop_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if result.evaluations() != references[0].as_slice() {
            return Err("bare loop diverged from the sequential reference".into());
        }
        discard_store(&store);
    }
    let mut supervised_ms = f64::INFINITY;
    for _ in 0..reps {
        let store = scratch_store("supervised")?;
        let service = BoService::new(store, ServeConfig::default());
        let start = Instant::now();
        service.submit("bench-0", driver(quick, seed(0)), Arc::clone(&problem))?;
        service.drain();
        supervised_ms = supervised_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if service.history("bench-0")? != references[0] {
            return Err("supervised session diverged from the sequential reference".into());
        }
        discard_store(service.store());
    }
    let supervision_overhead_pct = ((supervised_ms - bare_loop_ms) / bare_loop_ms * 100.0).max(0.0);

    // --- recovery section --------------------------------------------------
    // Kill the service mid-flight (the fail-point trips between a step's
    // compute and its persist, exactly where `kill -9` hurts most), then
    // bring up a fresh service over the same store.
    let store = scratch_store("recovery")?;
    let store_dir = store.dir().to_path_buf();
    let steps_per_session = evals_per_session - bench_config(quick, 0).initial_samples + 1;
    let kill_after = (killed_sessions * steps_per_session) / 2;
    let doomed = BoService::new(
        store,
        ServeConfig {
            max_sessions: killed_sessions,
            kill_after_steps: Some(kill_after.max(1)),
            ..ServeConfig::default()
        },
    );
    for i in 0..killed_sessions {
        doomed.submit(&session_id(i), driver(quick, seed(i)), Arc::clone(&problem))?;
    }
    doomed.drain();
    let steps_lost_to_kill = doomed.stats().steps_lost_to_kill;
    drop(doomed);

    let fresh = BoService::new(
        SessionStore::open(&store_dir)?,
        ServeConfig {
            max_sessions: killed_sessions,
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    for i in 0..killed_sessions {
        fresh.recover(&session_id(i), driver(quick, seed(i)), Arc::clone(&problem))?;
    }
    let recover_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    fresh.drain();
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut recovery_bit_identical = true;
    for (i, reference) in references.iter().enumerate().take(killed_sessions) {
        if service_history_ne(&fresh, &session_id(i), reference)? {
            recovery_bit_identical = false;
        }
    }
    discard_store(fresh.store());
    drop(fresh);

    // --- shedding section --------------------------------------------------
    // Both sub-scenarios run on small private pools so "every worker busy"
    // is a scripted condition, not a race.  First: a full pool of wedged
    // evaluations => explicit backpressure.
    let shed_config = BoConfig::fast(4, 8);
    let shed_driver =
        |s: u64| BayesOpt::neural_with(shed_config.clone().with_seed(s), EnsembleConfig::fast());
    let store = scratch_store("reject")?;
    let reject = BoService::new(
        store,
        ServeConfig {
            max_sessions: 2,
            workers: Some(2),
            ..ServeConfig::default()
        },
    );
    let gate_a = GatedProblem::new();
    let gate_b = GatedProblem::new();
    reject.submit("busy-a", shed_driver(1), gate_a.clone())?;
    gate_a.wait_entered()?;
    reject.submit("busy-b", shed_driver(2), gate_b.clone())?;
    gate_b.wait_entered()?;
    let rejected = matches!(
        reject.submit("extra", shed_driver(3), Arc::clone(&problem)),
        Err(ServeError::Overloaded { .. })
    );
    gate_a.release();
    gate_b.release();
    reject.drain();
    let overload_rejections = reject.stats().overload_rejections;
    discard_store(reject.store());
    drop(reject);

    // Second: a single worker wedged by one session leaves the next one
    // idle-in-queue; a further submission parks it (checkpoint-and-park the
    // oldest idle session) instead of failing, and it resumes later.
    let store = scratch_store("park")?;
    let park = BoService::new(
        store,
        ServeConfig {
            max_sessions: 2,
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    let gate_c = GatedProblem::new();
    park.submit("busy-c", shed_driver(4), gate_c.clone())?;
    gate_c.wait_entered()?;
    park.submit("idle-d", shed_driver(5), Arc::clone(&problem))?;
    park.submit("extra-e", shed_driver(6), Arc::clone(&problem))?;
    let parked_now = park.status("idle-d")? == SessionStatus::Parked;
    gate_c.release();
    park.drain();
    park.resume_parked("idle-d")?;
    park.drain();
    let parked_session_completed = parked_now && park.status("idle-d")? == SessionStatus::Completed;
    let park_stats = park.stats();
    let sessions_parked = park_stats.sessions_parked;
    let sessions_unparked = park_stats.sessions_unparked;
    discard_store(park.store());
    drop(park);
    if !rejected && overload_rejections == 0 {
        return Err("overload scenario produced no backpressure".into());
    }

    Ok(ServeBenchReport {
        sessions,
        evals_per_session,
        wall_ms,
        sessions_per_sec,
        p50_step_ms,
        p99_step_ms,
        throughput_bit_identical,
        bare_loop_ms,
        supervised_ms,
        supervision_overhead_pct,
        killed_sessions,
        steps_lost_to_kill,
        recover_ms,
        replay_ms,
        recovery_bit_identical,
        sessions_parked,
        sessions_unparked,
        overload_rejections,
        parked_session_completed,
    })
}

fn service_history_ne(
    service: &BoService<NeuralGpEnsembleTrainer>,
    id: &str,
    reference: &[(Vec<f64>, Evaluation)],
) -> Result<bool, BenchError> {
    Ok(service.status(id)? != SessionStatus::Completed || service.history(id)? != reference)
}

/// Human-readable summary of the report.
pub fn format_serve_table(r: &ServeBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "throughput       {} sessions x {} evals in {:>7.1} ms   {:.2} sessions/s   step p50 {:.2} ms  p99 {:.2} ms   bit-identical {}\n",
        r.sessions,
        r.evals_per_session,
        r.wall_ms,
        r.sessions_per_sec,
        r.p50_step_ms,
        r.p99_step_ms,
        r.throughput_bit_identical
    ));
    out.push_str(&format!(
        "supervision      bare loop {:>7.1} ms   supervised {:>7.1} ms   overhead {:.2}%\n",
        r.bare_loop_ms, r.supervised_ms, r.supervision_overhead_pct
    ));
    out.push_str(&format!(
        "recovery         {} sessions killed mid-step ({} steps lost)   recover {:.2} ms   replay {:>7.1} ms   bit-identical {}\n",
        r.killed_sessions,
        r.steps_lost_to_kill,
        r.recover_ms,
        r.replay_ms,
        r.recovery_bit_identical
    ));
    out.push_str(&format!(
        "shedding         parked {}  unparked {}  rejected {}   parked session completed {}\n",
        r.sessions_parked, r.sessions_unparked, r.overload_rejections, r.parked_session_completed
    ));
    out
}

/// Serialises the report as the `BENCH_serve.json` document.
pub fn format_serve_json(r: &ServeBenchReport, quick: bool) -> String {
    let rows = vec![
        format!(
            "{{\"section\": \"throughput\", \"sessions\": {}, \"evals_per_session\": {}, \
             \"wall_ms\": {}, \"sessions_per_sec\": {}, \"p50_step_ms\": {}, \"p99_step_ms\": {}, \
             \"bit_identical\": {}}}",
            r.sessions,
            r.evals_per_session,
            json::number(r.wall_ms),
            json::number(r.sessions_per_sec),
            json::number(r.p50_step_ms),
            json::number(r.p99_step_ms),
            r.throughput_bit_identical
        ),
        format!(
            "{{\"section\": \"overhead\", \"bare_loop_ms\": {}, \"supervised_ms\": {}, \
             \"supervision_overhead_pct\": {}}}",
            json::number(r.bare_loop_ms),
            json::number(r.supervised_ms),
            json::number(r.supervision_overhead_pct)
        ),
        format!(
            "{{\"section\": \"recovery\", \"killed_sessions\": {}, \"steps_lost_to_kill\": {}, \
             \"recover_ms\": {}, \"replay_ms\": {}, \"bit_identical\": {}}}",
            r.killed_sessions,
            r.steps_lost_to_kill,
            json::number(r.recover_ms),
            json::number(r.replay_ms),
            r.recovery_bit_identical
        ),
        format!(
            "{{\"section\": \"shedding\", \"sessions_parked\": {}, \"sessions_unparked\": {}, \
             \"overload_rejections\": {}, \"parked_session_completed\": {}}}",
            r.sessions_parked,
            r.sessions_unparked,
            r.overload_rejections,
            r.parked_session_completed
        ),
    ];
    json::document("nnbo-serve-v1", "serve", quick, "sections", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_bench_is_consistent_and_serialises() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let r = run_serve_bench(true).expect("quick serve bench runs");
        assert!(r.throughput_bit_identical, "served histories must match");
        assert!(r.recovery_bit_identical, "recovered histories must match");
        assert!(
            r.steps_lost_to_kill >= 1,
            "the kill switch must have cost work"
        );
        assert!(r.sessions_parked >= 1 && r.sessions_unparked >= 1);
        assert!(r.overload_rejections >= 1);
        assert!(r.parked_session_completed);
        assert!(r.sessions_per_sec > 0.0);
        let json = format_serve_json(&r, true);
        assert!(json.contains("\"schema\": \"nnbo-serve-v1\""));
        assert!(json.contains("\"section\": \"recovery\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!format_serve_table(&r).is_empty());
    }
}
