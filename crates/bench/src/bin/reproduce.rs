//! `reproduce` — regenerates the paper's tables and complexity study.
//!
//! Usage:
//!
//! ```text
//! reproduce [--quick] table1           # Table I  (two-stage op-amp) → BENCH_table1.json
//! reproduce [--quick] table2           # Table II (charge pump) + D=20 high-dim study → BENCH_table2.json
//! reproduce [--quick] scaling          # §III.D complexity scaling + subspace acquisition study → BENCH_scaling.json
//! reproduce [--quick] linalg           # kernel old-vs-new benchmark → BENCH_linalg.json
//! reproduce [--quick] fit              # fit-path old-vs-new benchmark → BENCH_fit.json
//! reproduce [--quick] predict          # packed-vs-blocked batched prediction → BENCH_predict.json
//! reproduce [--quick] pvt              # parallel-vs-sequential PVT corner-sweep throughput → BENCH_pvt.json
//! reproduce [--quick] robustness       # fault-tolerance: overhead + recovery → BENCH_robustness.json
//! reproduce [--quick] serve            # multi-session serving layer: throughput, recovery, shedding → BENCH_serve.json
//! reproduce [--quick] ablation-ensemble      # ensemble-size ablation (E4)
//! reproduce [--quick] ablation-acquisition   # acquisition-function ablation (E5)
//! reproduce [--quick] all              # everything above
//! ```
//!
//! `--quick` shrinks every experiment to a smoke-test scale so CI can execute
//! the whole harness in seconds.  Environment variables: `NNBO_FULL=1` runs
//! the paper-scale protocol, `NNBO_RUNS=<n>` overrides the repetition count,
//! `NNBO_MAX_SIMS=<n>` the BO simulation budget (ignored under `--quick`).

use nnbo_bench::{
    format_fit_json, format_fit_table, format_linalg_json, format_linalg_table,
    format_predict_json, format_predict_table, format_pvt_json, format_pvt_table,
    format_robustness_json, format_robustness_table, format_scaling_json, format_serve_json,
    format_serve_table, format_table1, format_table1_json, format_table2, format_table2_highdim,
    format_table2_json, run_ablation_acquisition, run_ablation_ensemble, run_fit_bench,
    run_linalg_bench, run_predict_bench, run_pvt_bench, run_robustness_bench, run_scaling,
    run_serve_bench, run_subspace_scaling, run_table1, run_table2, run_table2_highdim, BenchError,
    Protocol, SubspaceProtocol,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = if let Some(pos) = args.iter().position(|a| a == "--quick") {
        args.remove(pos);
        true
    } else {
        false
    };
    let command = args.first().map(String::as_str).unwrap_or("all");
    let outcome = match command {
        "table1" => table1(quick),
        "table2" => table2(quick),
        "scaling" => scaling(quick),
        "linalg" => linalg(quick),
        "fit" => fit(quick),
        "predict" => predict(quick),
        "pvt" => pvt(quick),
        "robustness" => robustness(quick),
        "serve" => serve(quick),
        "ablation-ensemble" => ablation_ensemble(quick),
        "ablation-acquisition" => ablation_acquisition(quick),
        "all" => table1(quick)
            .and_then(|()| table2(quick))
            .and_then(|()| scaling(quick))
            .and_then(|()| linalg(quick))
            .and_then(|()| fit(quick))
            .and_then(|()| predict(quick))
            .and_then(|()| pvt(quick))
            .and_then(|()| robustness(quick))
            .and_then(|()| serve(quick))
            .and_then(|()| ablation_ensemble(quick))
            .and_then(|()| ablation_acquisition(quick)),
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!(
                "expected one of: table1 | table2 | scaling | linalg | fit | predict | pvt | robustness | serve | ablation-ensemble | ablation-acquisition | all"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("reproduce {command} failed: {e}");
        std::process::exit(1);
    }
}

/// Smallest protocol that still runs every algorithm end to end.
fn smoke(mut protocol: Protocol) -> Protocol {
    protocol.runs = 1;
    protocol.initial_samples = protocol.initial_samples.min(8);
    protocol.max_sims_bo = protocol.initial_samples + 4;
    protocol.max_sims_gaspad = protocol.max_sims_bo + 4;
    protocol.max_sims_de = 40;
    protocol.ensemble_members = 2;
    protocol.epochs = 20;
    protocol.candidate_pool = 64;
    protocol
}

fn table1_protocol(quick: bool) -> Protocol {
    if quick {
        smoke(Protocol::table1_quick())
    } else {
        Protocol::table1_quick().with_env_overrides(Protocol::table1_paper())
    }
}

fn table2_protocol(quick: bool) -> Protocol {
    if quick {
        smoke(Protocol::table2_quick())
    } else {
        Protocol::table2_quick().with_env_overrides(Protocol::table2_paper())
    }
}

/// Writes a benchmark/result JSON document into the working directory; an IO
/// failure propagates so the run exits non-zero.
///
/// JSON has no representation for non-finite floats, so a bare `NaN` / `inf`
/// / `Infinity` value token means an emitter leaked an unguarded float (the
/// emitters encode those as `null`).  Such a document would silently break
/// every downstream consumer; refuse to write it and fail the run instead so
/// CI catches the regression.
fn write_json(path: &str, json: &str) -> Result<(), BenchError> {
    for token in ["NaN", "inf", "Infinity"] {
        if contains_bare_token(json, token) {
            return Err(format!(
                "refusing to write {path}: document contains non-finite token `{token}`"
            )
            .into());
        }
    }
    std::fs::write(path, json).map_err(|e| format!("could not write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// `true` when `token` occurs in `text` as a bare value token.  Everything
/// inside double-quoted JSON strings is skipped (a workload named
/// `"ngp_inference"` or a note mentioning `NaN` is fine), and outside strings
/// the match must be word-bounded — so `: inf,` or `[-inf]` is flagged while
/// valid documents never are.
fn contains_bare_token(text: &str, token: &str) -> bool {
    let bytes = text.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if b == b'\\' {
                i += 2;
                continue;
            }
            if b == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        if b == b'"' {
            in_string = true;
            i += 1;
            continue;
        }
        if text[i..].starts_with(token) {
            let end = i + token.len();
            let open = i == 0 || !is_word(bytes[i - 1]);
            let close = end == bytes.len() || !is_word(bytes[end]);
            if open && close {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn table1(quick: bool) -> Result<(), BenchError> {
    let protocol = table1_protocol(quick);
    println!("# Experiment E1 (Table I) — protocol: {protocol:?}\n");
    let rows = run_table1(&protocol)?;
    println!("{}", format_table1(&rows));
    write_json("BENCH_table1.json", &format_table1_json(&rows, quick))?;
    println!();
    Ok(())
}

fn table2(quick: bool) -> Result<(), BenchError> {
    let protocol = table2_protocol(quick);
    println!("# Experiment E2 (Table II) — protocol: {protocol:?}\n");
    let rows = run_table2(&protocol)?;
    println!("{}", format_table2(&rows));
    // The high-dimensional companion study rides Table II's protocol but only
    // the BO budget matters, so the smoke-scale shrink applies unchanged.
    let highdim = run_table2_highdim(&protocol)?;
    println!("{}", format_table2_highdim(&highdim));
    write_json(
        "BENCH_table2.json",
        &format_table2_json(&rows, &highdim, quick),
    )?;
    println!();
    Ok(())
}

fn scaling(quick: bool) -> Result<(), BenchError> {
    println!("# Experiment E3 (section III.D) — surrogate cost vs. number of observations\n");
    let full = std::env::var("NNBO_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sizes: &[usize] = if quick {
        &[25, 50]
    } else if full {
        &[50, 100, 200, 400, 800]
    } else {
        &[50, 100, 200, 400]
    };
    let epochs = if quick {
        20
    } else if full {
        200
    } else {
        100
    };
    let points = run_scaling(sizes, epochs)?;
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>18}",
        "N", "GP fit (ms)", "GP predict (us)", "NN-GP fit (ms)", "NN-GP predict (us)"
    );
    for p in &points {
        println!(
            "{:>6} {:>14.2} {:>16.2} {:>16.2} {:>18.2}",
            p.n, p.gp_fit_ms, p.gp_predict_us, p.neural_fit_ms, p.neural_predict_us
        );
    }
    println!();

    println!("## Acquisition-search scaling — full-pool WEIBO vs LinEasyBO line subspaces\n");
    let protocol = if quick {
        SubspaceProtocol::quick()
    } else {
        SubspaceProtocol::full()
    };
    let subspace = run_subspace_scaling(&protocol)?;
    println!(
        "{:>10} {:>5} {:>12} {:>14} {:>18} {:>10}",
        "Alg", "D", "scored/iter", "suggest calls", "suggest mean (us)", "best"
    );
    for p in &subspace {
        println!(
            "{:>10} {:>5} {:>12} {:>14} {:>18.2} {:>10.4}",
            p.algorithm,
            p.dim,
            p.scored_per_iteration,
            p.suggest_calls,
            p.suggest_mean_us,
            p.best_fom
        );
    }
    for &dim in protocol.dims {
        let cost = |name: &str| {
            subspace
                .iter()
                .find(|p| p.dim == dim && p.algorithm == name)
                .map(|p| p.suggest_mean_us)
        };
        if let (Some(pool), Some(line)) = (cost("WEIBO"), cost("LinEasyBO")) {
            println!("D = {dim}: per-suggestion speedup {:.1}x", pool / line);
        }
    }
    println!();
    write_json(
        "BENCH_scaling.json",
        &format_scaling_json(&points, &subspace, quick),
    )?;
    println!();
    Ok(())
}

fn linalg(quick: bool) -> Result<(), BenchError> {
    println!("# Prediction-path benchmark — reference vs blocked/batched/incremental\n");
    let entries = run_linalg_bench(quick)?;
    print!("{}", format_linalg_table(&entries));
    println!();
    write_json("BENCH_linalg.json", &format_linalg_json(&entries, quick))?;
    println!();
    Ok(())
}

fn fit(quick: bool) -> Result<(), BenchError> {
    println!("# Fit-path benchmark — cold vs warm refits, sequential vs shared multi-output\n");
    let entries = run_fit_bench(quick)?;
    print!("{}", format_fit_table(&entries));
    println!();
    write_json("BENCH_fit.json", &format_fit_json(&entries, quick))?;
    println!();
    Ok(())
}

fn predict(quick: bool) -> Result<(), BenchError> {
    println!(
        "# Batched-prediction benchmark — packed (AVX2+FMA + fused exp) vs portable kernels\n"
    );
    let entries = run_predict_bench(quick)?;
    print!("{}", format_predict_table(&entries));
    println!();
    write_json("BENCH_predict.json", &format_predict_json(&entries, quick))?;
    println!();
    Ok(())
}

fn pvt(quick: bool) -> Result<(), BenchError> {
    println!(
        "# Corner-sweep benchmark — parallel fan-out vs sequential reference (bit-identity pinned)\n"
    );
    let entries = run_pvt_bench(quick)?;
    print!("{}", format_pvt_table(&entries));
    println!();
    write_json("BENCH_pvt.json", &format_pvt_json(&entries, quick))?;
    println!();
    Ok(())
}

fn robustness(quick: bool) -> Result<(), BenchError> {
    println!(
        "# Robustness benchmark — clean-path overhead, fault recovery, checkpoint round trip\n"
    );
    let report = run_robustness_bench(quick)?;
    print!("{}", format_robustness_table(&report));
    println!();
    write_json(
        "BENCH_robustness.json",
        &format_robustness_json(&report, quick),
    )?;
    println!();
    Ok(())
}

fn serve(quick: bool) -> Result<(), BenchError> {
    println!(
        "# Serving-layer benchmark — throughput, supervision overhead, crash recovery, shedding\n"
    );
    let report = run_serve_bench(quick)?;
    print!("{}", format_serve_table(&report));
    println!();
    write_json("BENCH_serve.json", &format_serve_json(&report, quick))?;
    println!();
    Ok(())
}

fn ablation_ensemble(quick: bool) -> Result<(), BenchError> {
    let protocol = table1_protocol(quick);
    println!("# Experiment E4 — ensemble-size ablation on the op-amp problem\n");
    let sizes: &[usize] = if quick { &[1, 2] } else { &[1, 3, 5] };
    let rows = run_ablation_ensemble(&protocol, sizes)?;
    print_ablation(
        &rows,
        "GAIN (dB), higher is better (reported as -objective)",
    );
    Ok(())
}

fn ablation_acquisition(quick: bool) -> Result<(), BenchError> {
    let protocol = table1_protocol(quick);
    println!("# Experiment E5 — acquisition-function ablation on the op-amp problem\n");
    let rows = run_ablation_acquisition(&protocol)?;
    print_ablation(
        &rows,
        "GAIN (dB), higher is better (reported as -objective)",
    );
    Ok(())
}

fn print_ablation(rows: &[nnbo_bench::AblationRow], note: &str) {
    println!("({note})");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "setting", "mean", "median", "best", "worst", "Avg.#Sim", "success"
    );
    for row in rows {
        match &row.stats {
            Some(s) => println!(
                "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.1} {:>9}",
                row.setting,
                -s.mean,
                -s.median,
                -s.best,
                -s.worst,
                s.avg_simulations,
                s.success_rate()
            ),
            None => println!("{:<14} (no successful run)", row.setting),
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::contains_bare_token;

    #[test]
    fn bare_tokens_are_flagged_only_outside_identifiers_and_strings() {
        for bad in [
            "{\"a\": inf}",
            "{\"a\": -inf}",
            "[1.0, NaN]",
            "{\"b\": Infinity,",
        ] {
            let token = ["NaN", "inf", "Infinity"]
                .iter()
                .find(|t| contains_bare_token(bad, t));
            assert!(token.is_some(), "missed non-finite value in {bad}");
        }
        for good in [
            "{\"name\": \"ngp_inference_warm\"}",
            "{\"info\": 1}",
            "{\"name\": \"inf\"}",
            "{\"note\": \"non-finite (NaN / Infinity) values are encoded as null\"}",
            "{\"a\": null}",
        ] {
            for t in ["NaN", "inf", "Infinity"] {
                assert!(
                    !contains_bare_token(good, t),
                    "false positive `{t}` in {good}"
                );
            }
        }
    }
}
