//! `reproduce` — regenerates the paper's tables and complexity study.
//!
//! Usage:
//!
//! ```text
//! reproduce table1                 # Table I  (two-stage op-amp)
//! reproduce table2                 # Table II (charge pump, 18 PVT corners)
//! reproduce scaling                # §III.D complexity scaling study
//! reproduce ablation-ensemble      # ensemble-size ablation (E4)
//! reproduce ablation-acquisition   # acquisition-function ablation (E5)
//! reproduce all                    # everything above
//! ```
//!
//! Environment variables: `NNBO_FULL=1` runs the paper-scale protocol,
//! `NNBO_RUNS=<n>` overrides the repetition count, `NNBO_MAX_SIMS=<n>` the BO
//! simulation budget.

use nnbo_bench::{
    format_table1, format_table2, run_ablation_acquisition, run_ablation_ensemble, run_scaling,
    run_table1, run_table2, Protocol,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    match command {
        "table1" => table1(),
        "table2" => table2(),
        "scaling" => scaling(),
        "ablation-ensemble" => ablation_ensemble(),
        "ablation-acquisition" => ablation_acquisition(),
        "all" => {
            table1();
            table2();
            scaling();
            ablation_ensemble();
            ablation_acquisition();
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("expected one of: table1 | table2 | scaling | ablation-ensemble | ablation-acquisition | all");
            std::process::exit(2);
        }
    }
}

fn table1() {
    let protocol = Protocol::table1_quick().with_env_overrides(Protocol::table1_paper());
    println!("# Experiment E1 (Table I) — protocol: {protocol:?}\n");
    let rows = run_table1(&protocol);
    println!("{}", format_table1(&rows));
}

fn table2() {
    let protocol = Protocol::table2_quick().with_env_overrides(Protocol::table2_paper());
    println!("# Experiment E2 (Table II) — protocol: {protocol:?}\n");
    let rows = run_table2(&protocol);
    println!("{}", format_table2(&rows));
}

fn scaling() {
    println!("# Experiment E3 (section III.D) — surrogate cost vs. number of observations\n");
    let full = std::env::var("NNBO_FULL").map(|v| v == "1").unwrap_or(false);
    let sizes: &[usize] = if full {
        &[50, 100, 200, 400, 800]
    } else {
        &[50, 100, 200, 400]
    };
    let epochs = if full { 200 } else { 100 };
    let points = run_scaling(sizes, epochs);
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>18}",
        "N", "GP fit (ms)", "GP predict (us)", "NN-GP fit (ms)", "NN-GP predict (us)"
    );
    for p in &points {
        println!(
            "{:>6} {:>14.2} {:>16.2} {:>16.2} {:>18.2}",
            p.n, p.gp_fit_ms, p.gp_predict_us, p.neural_fit_ms, p.neural_predict_us
        );
    }
    println!();
}

fn ablation_ensemble() {
    let protocol = Protocol::table1_quick().with_env_overrides(Protocol::table1_paper());
    println!("# Experiment E4 — ensemble-size ablation on the op-amp problem\n");
    let rows = run_ablation_ensemble(&protocol, &[1, 3, 5]);
    print_ablation(&rows, "GAIN (dB), higher is better (reported as -objective)");
}

fn ablation_acquisition() {
    let protocol = Protocol::table1_quick().with_env_overrides(Protocol::table1_paper());
    println!("# Experiment E5 — acquisition-function ablation on the op-amp problem\n");
    let rows = run_ablation_acquisition(&protocol);
    print_ablation(&rows, "GAIN (dB), higher is better (reported as -objective)");
}

fn print_ablation(rows: &[nnbo_bench::AblationRow], note: &str) {
    println!("({note})");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "setting", "mean", "median", "best", "worst", "Avg.#Sim", "success"
    );
    for row in rows {
        match &row.stats {
            Some(s) => println!(
                "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.1} {:>9}",
                row.setting, -s.mean, -s.median, -s.best, -s.worst, s.avg_simulations,
                s.success_rate()
            ),
            None => println!("{:<14} (no successful run)", row.setting),
        }
    }
    println!();
}
