//! Fault-tolerance benchmark: measures the resilience layer's clean-path
//! overhead and demonstrates its recovery behaviour under a canned fault
//! plan, emitting `BENCH_robustness.json` so later PRs can track both.
//!
//! Three sections:
//!
//! * **clean** — a failure-free optimization run.  The resilience layer must
//!   be inert here: zero recovery events, and a per-evaluation overhead (the
//!   failure-aware `try_evaluate` wrapper plus the loop's bookkeeping,
//!   measured directly against the raw `evaluate` path) that stays a small
//!   fraction of the run — the budget is < 2 %.
//! * **faulted** — the same run under a deterministic fault plan (a burst of
//!   evaluation failures, a timeout, one aborted refit).  Reports every
//!   `RecoveryLog` counter so the recovery behaviour is pinned, and checks
//!   the optimum came from a real simulation.
//! * **snapshot** — checkpoint → JSON → restore mid-run, timing the round
//!   trip and verifying the resumed continuation is bit-identical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{
    BayesOpt, BoConfig, BoSnapshot, EnsembleConfig, EvalOutcome, Evaluation, Problem, RecoveryLog,
};

use crate::json;
use crate::BenchError;

/// Everything `BENCH_robustness.json` reports.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Wall time of the failure-free run (milliseconds).
    pub clean_run_ms: f64,
    /// Total recovery events on the clean run (must be 0).
    pub clean_total_events: usize,
    /// Estimated clean-path overhead of the resilience layer, as a percent
    /// of the whole run: evaluations × (failure-aware wrapper cost − raw
    /// evaluation cost) ÷ run time.
    pub clean_path_overhead_pct: f64,
    /// Wall time of the faulted run (milliseconds).
    pub faulted_run_ms: f64,
    /// Recovery log of the faulted run.
    pub faulted_recovery: RecoveryLog,
    /// Whether the faulted run's reported optimum came from a real
    /// (non-imputed) simulation.
    pub faulted_best_is_real: bool,
    /// Wall time of snapshot → JSON → parse → restore (milliseconds).
    pub snapshot_roundtrip_ms: f64,
    /// Whether the resumed continuation reproduced the uninterrupted run
    /// bit for bit.
    pub snapshot_bit_identical: bool,
}

/// Fails scripted `try_evaluate` calls of the wrapped problem (the canned
/// fault plan of the faulted section).
struct ScriptedFaults<P> {
    inner: P,
    calls: AtomicUsize,
    fail: std::ops::Range<usize>,
    timeout_at: usize,
}

impl<P: Problem> Problem for ScriptedFaults<P> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let i = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.fail.contains(&i) {
            EvalOutcome::Failed(format!("bench: scripted failure at call {i}"))
        } else if i == self.timeout_at {
            EvalOutcome::Timeout
        } else {
            self.inner.try_evaluate(x)
        }
    }
}

fn bench_config(quick: bool) -> BoConfig {
    if quick {
        BoConfig::fast(8, 18).with_seed(7)
    } else {
        BoConfig::new(10, 40).with_seed(7)
    }
}

fn driver(config: BoConfig, quick: bool) -> BayesOpt<nnbo_core::NeuralGpEnsembleTrainer> {
    let ensemble = if quick {
        EnsembleConfig::fast()
    } else {
        EnsembleConfig::default()
    };
    BayesOpt::neural_with(config, ensemble)
}

/// Median-of-3 wall time of `f` in milliseconds.
fn time_ms<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(3);
    let start = Instant::now();
    let mut last = f();
    times.push(start.elapsed().as_secs_f64() * 1e3);
    for _ in 1..3 {
        let start = Instant::now();
        last = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[1], last)
}

/// Per-call cost (nanoseconds) of `f` over `iters` calls.
fn per_call_ns(iters: usize, mut f: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs the three sections and assembles the report.
pub fn run_robustness_bench(quick: bool) -> Result<RobustnessReport, BenchError> {
    let config = bench_config(quick);

    // --- clean section ----------------------------------------------------
    let problem = ConstrainedBranin::new();
    let (clean_run_ms, clean) = time_ms(|| driver(config.clone(), quick).run(&problem));
    let clean = clean?;
    let clean_total_events = clean.recovery().total_events();

    // The failure-aware wrapper's cost per evaluation, measured against the
    // raw evaluation path it guards.
    let iters = if quick { 2_000 } else { 20_000 };
    let points: Vec<Vec<f64>> = (0..64)
        .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.61 + 0.11) % 1.0])
        .collect();
    let wrapped_ns = per_call_ns(iters, |i| {
        std::hint::black_box(problem.try_evaluate(&points[i % points.len()]));
    });
    let raw_ns = per_call_ns(iters, |i| {
        std::hint::black_box(problem.evaluate(&points[i % points.len()]));
    });
    let evals = config.max_evaluations as f64;
    let clean_path_overhead_pct =
        (evals * (wrapped_ns - raw_ns).max(0.0)) / (clean_run_ms * 1e6) * 100.0;

    // --- faulted section --------------------------------------------------
    // Burst of failures right after the initial design, one timeout later.
    let init = config.initial_samples;
    let faulted_problem = ScriptedFaults {
        inner: ConstrainedBranin::new(),
        calls: AtomicUsize::new(0),
        fail: (init + 1)..(init + 5),
        timeout_at: init + 8,
    };
    let (faulted_run_ms, faulted) = time_ms(|| {
        faulted_problem.calls.store(0, Ordering::SeqCst);
        driver(config.clone(), quick).run(&faulted_problem)
    });
    let faulted = faulted?;
    let faulted_recovery = faulted.recovery().clone();
    let faulted_best_is_real = faulted
        .best_index()
        .is_some_and(|i| !faulted_recovery.imputed.contains(&i));

    // --- snapshot section -------------------------------------------------
    let bo = driver(config.clone(), quick);
    let reference = bo.run(&problem)?;
    let mut state = bo.start(&problem)?;
    for _ in 0..3 {
        bo.step(&problem, &mut state)?;
    }
    let start = Instant::now();
    let snap = BoSnapshot::from_json(&bo.snapshot(&state).to_json())?;
    let mut resumed = bo.resume(&snap)?;
    let snapshot_roundtrip_ms = start.elapsed().as_secs_f64() * 1e3;
    while bo.step(&problem, &mut resumed)? {}
    let continued = bo.finish(resumed);
    let snapshot_bit_identical = continued.evaluations() == reference.evaluations()
        && continued.full_refits() == reference.full_refits();

    Ok(RobustnessReport {
        clean_run_ms,
        clean_total_events,
        clean_path_overhead_pct,
        faulted_run_ms,
        faulted_recovery,
        faulted_best_is_real,
        snapshot_roundtrip_ms,
        snapshot_bit_identical,
    })
}

/// Human-readable summary of the report.
pub fn format_robustness_table(r: &RobustnessReport) -> String {
    let rec = &r.faulted_recovery;
    let mut out = String::new();
    out.push_str(&format!(
        "clean run        {:>6.1} ms   recovery events {}   est. overhead {:.3}%\n",
        r.clean_run_ms, r.clean_total_events, r.clean_path_overhead_pct
    ));
    out.push_str(&format!(
        "faulted run      {:>6.1} ms   failures {}  timeouts {}  retries {}  imputed {}  best-is-real {}\n",
        r.faulted_run_ms,
        rec.eval_failures,
        rec.eval_timeouts,
        rec.eval_retries,
        rec.imputed.len(),
        r.faulted_best_is_real
    ));
    out.push_str(&format!(
        "                 degraded refits {}  fallback suggests {}  suppressed failure-refits {}  jitter {}  drops {}\n",
        rec.degraded_refits,
        rec.fallback_suggests,
        rec.failure_refits_suppressed,
        rec.jitter_promotions,
        rec.member_drops
    ));
    out.push_str(&format!(
        "snapshot         {:>6.2} ms round trip   bit-identical {}\n",
        r.snapshot_roundtrip_ms, r.snapshot_bit_identical
    ));
    out
}

/// Serialises the report as the `BENCH_robustness.json` document.
pub fn format_robustness_json(r: &RobustnessReport, quick: bool) -> String {
    let rec = &r.faulted_recovery;
    let rows = vec![
        format!(
            "{{\"section\": \"clean\", \"run_ms\": {}, \"recovery_events\": {}, \"overhead_pct\": {}}}",
            json::number(r.clean_run_ms),
            r.clean_total_events,
            json::number(r.clean_path_overhead_pct)
        ),
        format!(
            "{{\"section\": \"faulted\", \"run_ms\": {}, \"eval_failures\": {}, \"eval_timeouts\": {}, \
             \"eval_retries\": {}, \"imputed\": {}, \"degraded_refits\": {}, \"fallback_suggests\": {}, \
             \"failure_refits_suppressed\": {}, \"jitter_promotions\": {}, \"member_drops\": {}, \
             \"best_is_real\": {}}}",
            json::number(r.faulted_run_ms),
            rec.eval_failures,
            rec.eval_timeouts,
            rec.eval_retries,
            rec.imputed.len(),
            rec.degraded_refits,
            rec.fallback_suggests,
            rec.failure_refits_suppressed,
            rec.jitter_promotions,
            rec.member_drops,
            r.faulted_best_is_real
        ),
        format!(
            "{{\"section\": \"snapshot\", \"roundtrip_ms\": {}, \"bit_identical\": {}}}",
            json::number(r.snapshot_roundtrip_ms),
            r.snapshot_bit_identical
        ),
    ];
    json::document("nnbo-robustness-v1", "robustness", quick, "sections", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_consistent_and_serialises() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let r = run_robustness_bench(true).expect("quick robustness bench runs");
        assert_eq!(r.clean_total_events, 0, "clean run must be clean");
        assert!(r.clean_path_overhead_pct.is_finite());
        assert!(
            r.clean_path_overhead_pct < 2.0,
            "clean-path overhead {:.3}% breaches the 2% budget",
            r.clean_path_overhead_pct
        );
        assert!(r.faulted_recovery.eval_failures > 0);
        assert!(r.faulted_recovery.eval_timeouts > 0);
        assert!(r.faulted_best_is_real);
        assert!(r.snapshot_bit_identical);
        let json = format_robustness_json(&r, true);
        assert!(json.contains("\"schema\": \"nnbo-robustness-v1\""));
        assert!(json.contains("\"section\": \"faulted\""));
        assert!(!format_robustness_table(&r).is_empty());
    }
}
