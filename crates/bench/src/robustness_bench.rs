//! Fault-tolerance benchmark: measures the resilience layer's clean-path
//! overhead and demonstrates its recovery behaviour under a canned fault
//! plan, emitting `BENCH_robustness.json` so later PRs can track both.
//!
//! Four sections:
//!
//! * **clean** — a failure-free optimization run.  The resilience layer must
//!   be inert here: zero recovery events, and a per-evaluation overhead (the
//!   failure-aware `try_evaluate` wrapper plus the loop's bookkeeping,
//!   measured directly against the raw `evaluate` path) that stays a small
//!   fraction of the run — the budget is < 2 %.
//! * **faulted** — the same run under a deterministic fault plan (a burst of
//!   evaluation failures, a timeout, one aborted refit).  Reports every
//!   `RecoveryLog` counter so the recovery behaviour is pinned, and checks
//!   the optimum came from a real simulation.
//! * **snapshot** — checkpoint → JSON → restore mid-run, timing the round
//!   trip and verifying the resumed continuation is bit-identical.
//! * **store_faults** — the injectable-I/O store.  Clean-path persist
//!   latency through the trait-dispatched `StdIo` backend vs the same
//!   write→fsync→rename→fsync-dir sequence issued with direct `std::fs`
//!   calls (the pre-indirection store; the overhead budget is the same
//!   < 2 %), persist latency through a four-way `ShardedStore`, and a
//!   canned disk-fault scenario (torn write mid-persist, then bit-rot on
//!   the latest generation) proving scrub removes the debris, promotes the
//!   backup, and hands recovery the acknowledged payload.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{
    BayesOpt, BoConfig, BoSnapshot, EnsembleConfig, EvalOutcome, Evaluation, Problem, RecoveryLog,
};
use nnbo_serve::io::ScriptedFault;
use nnbo_serve::{
    fnv1a64, FaultIo, FaultKind, FaultPlan, SessionStore, ShardConfig, ShardedStore, SnapshotStore,
};

use crate::json;
use crate::BenchError;

/// Everything `BENCH_robustness.json` reports.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Wall time of the failure-free run (milliseconds).
    pub clean_run_ms: f64,
    /// Total recovery events on the clean run (must be 0).
    pub clean_total_events: usize,
    /// Estimated clean-path overhead of the resilience layer, as a percent
    /// of the whole run: evaluations × (failure-aware wrapper cost − raw
    /// evaluation cost) ÷ run time.
    pub clean_path_overhead_pct: f64,
    /// Wall time of the faulted run (milliseconds).
    pub faulted_run_ms: f64,
    /// Recovery log of the faulted run.
    pub faulted_recovery: RecoveryLog,
    /// Whether the faulted run's reported optimum came from a real
    /// (non-imputed) simulation.
    pub faulted_best_is_real: bool,
    /// Wall time of snapshot → JSON → parse → restore (milliseconds).
    pub snapshot_roundtrip_ms: f64,
    /// Whether the resumed continuation reproduced the uninterrupted run
    /// bit for bit.
    pub snapshot_bit_identical: bool,
    /// Median per-persist latency through the trait-dispatched `StdIo`
    /// store (microseconds).
    pub store_persist_us: f64,
    /// Median per-persist latency of the identical syscall sequence issued
    /// with direct `std::fs` calls — the pre-indirection baseline
    /// (microseconds).
    pub store_raw_persist_us: f64,
    /// Clean-path overhead of the `StoreIo` indirection as a percent of
    /// the raw persist (budget: < 2 %).
    pub store_dispatch_overhead_pct: f64,
    /// Median per-persist latency through a four-shard `ShardedStore`
    /// (rendezvous routing + retry wrapper included), microseconds.
    pub store_sharded_persist_us: f64,
    /// Torn-write debris files removed by the post-fault scrub.
    pub store_tmp_removed: usize,
    /// Backup generations scrub promoted over bit-rotted latest files.
    pub store_backups_promoted: usize,
    /// Whether both fault scenarios handed recovery the exact acknowledged
    /// payload after restart + scrub.
    pub store_fault_recovered: bool,
}

/// Fails scripted `try_evaluate` calls of the wrapped problem (the canned
/// fault plan of the faulted section).
struct ScriptedFaults<P> {
    inner: P,
    calls: AtomicUsize,
    fail: std::ops::Range<usize>,
    timeout_at: usize,
}

impl<P: Problem> Problem for ScriptedFaults<P> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let i = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.fail.contains(&i) {
            EvalOutcome::Failed(format!("bench: scripted failure at call {i}"))
        } else if i == self.timeout_at {
            EvalOutcome::Timeout
        } else {
            self.inner.try_evaluate(x)
        }
    }
}

fn bench_config(quick: bool) -> BoConfig {
    if quick {
        BoConfig::fast(8, 18).with_seed(7)
    } else {
        BoConfig::new(10, 40).with_seed(7)
    }
}

fn driver(config: BoConfig, quick: bool) -> BayesOpt<nnbo_core::NeuralGpEnsembleTrainer> {
    let ensemble = if quick {
        EnsembleConfig::fast()
    } else {
        EnsembleConfig::default()
    };
    BayesOpt::neural_with(config, ensemble)
}

/// Median-of-3 wall time of `f` in milliseconds.
fn time_ms<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(3);
    let start = Instant::now();
    let mut last = f();
    times.push(start.elapsed().as_secs_f64() * 1e3);
    for _ in 1..3 {
        let start = Instant::now();
        last = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[1], last)
}

/// Per-call cost (nanoseconds) of `f` over `iters` calls.
fn per_call_ns(iters: usize, mut f: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Wall time of one call of `f`, in microseconds.
fn timed_us(f: &mut impl FnMut(usize), i: usize) -> f64 {
    let start = Instant::now();
    f(i);
    start.elapsed().as_secs_f64() * 1e6
}

/// Median of a non-empty sample vector.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The exact syscall sequence `SessionStore::persist` issues, with direct
/// `std::fs` calls instead of the `StoreIo` trait object — the
/// pre-indirection store, kept here as the overhead baseline.
fn raw_persist(dir: &Path, id: &str, snapshot_json: &str) -> std::io::Result<()> {
    let payload = snapshot_json.as_bytes();
    let frame = format!(
        "nnbo-session v1 {} {:016x}\n{snapshot_json}\n",
        payload.len(),
        fnv1a64(payload)
    );
    let tmp = dir.join(format!("{id}.session.tmp"));
    let latest = dir.join(format!("{id}.session"));
    std::fs::write(&tmp, frame.as_bytes())?;
    std::fs::File::open(&tmp)?.sync_all()?;
    if latest.exists() {
        std::fs::rename(&latest, dir.join(format!("{id}.session.prev")))?;
    }
    std::fs::rename(&tmp, &latest)?;
    std::fs::File::open(dir)?.sync_all()
}

/// Store section results, in declaration order of the report fields.
struct StoreSection {
    persist_us: f64,
    raw_persist_us: f64,
    dispatch_overhead_pct: f64,
    sharded_persist_us: f64,
    tmp_removed: usize,
    backups_promoted: usize,
    fault_recovered: bool,
}

/// Measures the injectable-I/O store's clean path and runs the canned
/// disk-fault scenario.
fn store_faults_section(quick: bool) -> Result<StoreSection, BenchError> {
    let scratch =
        std::env::temp_dir().join(format!("nnbo-bench-store-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let payload = format!("{{\"iter\": 12, \"best\": 0.3978, \"history\": [{}]}}", {
        let vals: Vec<String> = (0..48)
            .map(|i| format!("{:.6}", i as f64 * 0.137))
            .collect();
        vals.join(", ")
    });
    let pairs = if quick { 192 } else { 768 };
    let ids = ["s0", "s1", "s2", "s3"];

    // Clean path: trait-dispatched StdIo vs the direct-fs baseline.
    // fsync latency on this box drifts by >10% over seconds and has
    // heavy tails, so the overhead comes from tightly paired samples:
    // each pair times one StdIo persist against one raw persist
    // back-to-back (alternating which goes first, killing order bias),
    // and the estimate is the median pair ratio — drift hits both sides
    // of a pair, and the median rejects the fsync-stall outliers.
    let stdio = SessionStore::open(scratch.join("stdio"))?;
    let raw_dir = scratch.join("raw");
    std::fs::create_dir_all(&raw_dir)?;
    let mut stdio_one = |i: usize| {
        stdio
            .persist(ids[i % ids.len()], &payload)
            .expect("clean persist");
    };
    let mut raw_one = |i: usize| {
        raw_persist(&raw_dir, ids[i % ids.len()], &payload).expect("raw persist");
    };
    for i in 0..8 {
        stdio_one(i);
        raw_one(i);
    }
    let mut stdio_samples = Vec::with_capacity(pairs);
    let mut raw_samples = Vec::with_capacity(pairs);
    let mut ratios = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let (s, r) = if i % 2 == 0 {
            let s = timed_us(&mut stdio_one, i);
            (s, timed_us(&mut raw_one, i))
        } else {
            let r = timed_us(&mut raw_one, i);
            (timed_us(&mut stdio_one, i), r)
        };
        stdio_samples.push(s);
        raw_samples.push(r);
        ratios.push(s / r);
    }
    let persist_us = median(stdio_samples);
    let raw_persist_us = median(raw_samples);
    let dispatch_overhead_pct = (median(ratios) - 1.0).max(0.0) * 100.0;

    // Sharded path: rendezvous routing + retry wrapper on top.
    let sharded = ShardedStore::open(scratch.join("sharded"), ShardConfig::new(4))?;
    let mut sharded_one = |i: usize| {
        sharded
            .persist(ids[i % ids.len()], &payload)
            .expect("sharded persist");
    };
    for i in 0..8 {
        sharded_one(i);
    }
    let sharded_persist_us = median((0..pairs).map(|i| timed_us(&mut sharded_one, i)).collect());

    // Fault scenario 1: a torn write tears persist #2 mid-file and crashes
    // the process.  Ops per persist: write, sync_file, [rename], rename,
    // sync_dir — so persist #0 is ops 0..4, #1 is 4..9, and op 9 is the
    // write of persist #2.
    let faulted_dir = scratch.join("faulted");
    let faulted = SessionStore::open_with(
        &faulted_dir,
        std::sync::Arc::new(FaultIo::new(FaultPlan::scripted(vec![ScriptedFault {
            at_op: 9,
            kind: FaultKind::TornWrite,
        }]))),
    )?;
    let mut acked = None;
    for i in 0..4 {
        let p = format!("{{\"iter\": {i}}}");
        if faulted.persist("s", &p).is_ok() {
            acked = Some(p);
        }
    }
    let survivor = SessionStore::open(&faulted_dir)?;
    let scrub_torn = survivor.scrub()?;
    let torn_recovered = survivor.load("s")?.map(|l| l.snapshot_json) == acked;

    // Fault scenario 2: the latest generation bit-rots on disk; scrub must
    // promote the intact backup and recovery must read it.
    let rot_dir = scratch.join("bitrot");
    let rot = SessionStore::open(&rot_dir)?;
    rot.persist("s", "{\"iter\": 0}")?;
    rot.persist("s", "{\"iter\": 1}")?;
    std::fs::write(
        rot_dir.join("s.session"),
        b"nnbo-session v1 9 deadbeef\ngarbage\n",
    )?;
    let scrub_rot = rot.scrub()?;
    let rot_recovered =
        rot.load("s")?.map(|l| l.snapshot_json) == Some("{\"iter\": 0}".to_string());

    let _ = std::fs::remove_dir_all(&scratch);
    Ok(StoreSection {
        persist_us,
        raw_persist_us,
        dispatch_overhead_pct,
        sharded_persist_us,
        tmp_removed: scrub_torn.tmp_removed,
        backups_promoted: scrub_rot.backups_promoted,
        fault_recovered: torn_recovered && rot_recovered,
    })
}

/// Runs the four sections and assembles the report.
pub fn run_robustness_bench(quick: bool) -> Result<RobustnessReport, BenchError> {
    let config = bench_config(quick);

    // --- clean section ----------------------------------------------------
    let problem = ConstrainedBranin::new();
    let (clean_run_ms, clean) = time_ms(|| driver(config.clone(), quick).run(&problem));
    let clean = clean?;
    let clean_total_events = clean.recovery().total_events();

    // The failure-aware wrapper's cost per evaluation, measured against the
    // raw evaluation path it guards.
    let iters = if quick { 2_000 } else { 20_000 };
    let points: Vec<Vec<f64>> = (0..64)
        .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.61 + 0.11) % 1.0])
        .collect();
    let wrapped_ns = per_call_ns(iters, |i| {
        std::hint::black_box(problem.try_evaluate(&points[i % points.len()]));
    });
    let raw_ns = per_call_ns(iters, |i| {
        std::hint::black_box(problem.evaluate(&points[i % points.len()]));
    });
    let evals = config.max_evaluations as f64;
    let clean_path_overhead_pct =
        (evals * (wrapped_ns - raw_ns).max(0.0)) / (clean_run_ms * 1e6) * 100.0;

    // --- faulted section --------------------------------------------------
    // Burst of failures right after the initial design, one timeout later.
    let init = config.initial_samples;
    let faulted_problem = ScriptedFaults {
        inner: ConstrainedBranin::new(),
        calls: AtomicUsize::new(0),
        fail: (init + 1)..(init + 5),
        timeout_at: init + 8,
    };
    let (faulted_run_ms, faulted) = time_ms(|| {
        faulted_problem.calls.store(0, Ordering::SeqCst);
        driver(config.clone(), quick).run(&faulted_problem)
    });
    let faulted = faulted?;
    let faulted_recovery = faulted.recovery().clone();
    let faulted_best_is_real = faulted
        .best_index()
        .is_some_and(|i| !faulted_recovery.imputed.contains(&i));

    // --- snapshot section -------------------------------------------------
    let bo = driver(config.clone(), quick);
    let reference = bo.run(&problem)?;
    let mut state = bo.start(&problem)?;
    for _ in 0..3 {
        bo.step(&problem, &mut state)?;
    }
    let start = Instant::now();
    let snap = BoSnapshot::from_json(&bo.snapshot(&state).to_json())?;
    let mut resumed = bo.resume(&snap)?;
    let snapshot_roundtrip_ms = start.elapsed().as_secs_f64() * 1e3;
    while bo.step(&problem, &mut resumed)? {}
    let continued = bo.finish(resumed);
    let snapshot_bit_identical = continued.evaluations() == reference.evaluations()
        && continued.full_refits() == reference.full_refits();

    // --- store_faults section ---------------------------------------------
    let store = store_faults_section(quick)?;

    Ok(RobustnessReport {
        clean_run_ms,
        clean_total_events,
        clean_path_overhead_pct,
        faulted_run_ms,
        faulted_recovery,
        faulted_best_is_real,
        snapshot_roundtrip_ms,
        snapshot_bit_identical,
        store_persist_us: store.persist_us,
        store_raw_persist_us: store.raw_persist_us,
        store_dispatch_overhead_pct: store.dispatch_overhead_pct,
        store_sharded_persist_us: store.sharded_persist_us,
        store_tmp_removed: store.tmp_removed,
        store_backups_promoted: store.backups_promoted,
        store_fault_recovered: store.fault_recovered,
    })
}

/// Human-readable summary of the report.
pub fn format_robustness_table(r: &RobustnessReport) -> String {
    let rec = &r.faulted_recovery;
    let mut out = String::new();
    out.push_str(&format!(
        "clean run        {:>6.1} ms   recovery events {}   est. overhead {:.3}%\n",
        r.clean_run_ms, r.clean_total_events, r.clean_path_overhead_pct
    ));
    out.push_str(&format!(
        "faulted run      {:>6.1} ms   failures {}  timeouts {}  retries {}  imputed {}  best-is-real {}\n",
        r.faulted_run_ms,
        rec.eval_failures,
        rec.eval_timeouts,
        rec.eval_retries,
        rec.imputed.len(),
        r.faulted_best_is_real
    ));
    out.push_str(&format!(
        "                 degraded refits {}  fallback suggests {}  suppressed failure-refits {}  jitter {}  drops {}\n",
        rec.degraded_refits,
        rec.fallback_suggests,
        rec.failure_refits_suppressed,
        rec.jitter_promotions,
        rec.member_drops
    ));
    out.push_str(&format!(
        "snapshot         {:>6.2} ms round trip   bit-identical {}\n",
        r.snapshot_roundtrip_ms, r.snapshot_bit_identical
    ));
    out.push_str(&format!(
        "store persist    {:>6.2} µs (StdIo)  {:>6.2} µs (raw fs)  dispatch overhead {:.2}%  {:>6.2} µs (4 shards)\n",
        r.store_persist_us,
        r.store_raw_persist_us,
        r.store_dispatch_overhead_pct,
        r.store_sharded_persist_us
    ));
    out.push_str(&format!(
        "store faults     tmp-removed {}  backups-promoted {}  recovered {}\n",
        r.store_tmp_removed, r.store_backups_promoted, r.store_fault_recovered
    ));
    out
}

/// Serialises the report as the `BENCH_robustness.json` document.
pub fn format_robustness_json(r: &RobustnessReport, quick: bool) -> String {
    let rec = &r.faulted_recovery;
    let rows = vec![
        format!(
            "{{\"section\": \"clean\", \"run_ms\": {}, \"recovery_events\": {}, \"overhead_pct\": {}}}",
            json::number(r.clean_run_ms),
            r.clean_total_events,
            json::number(r.clean_path_overhead_pct)
        ),
        format!(
            "{{\"section\": \"faulted\", \"run_ms\": {}, \"eval_failures\": {}, \"eval_timeouts\": {}, \
             \"eval_retries\": {}, \"imputed\": {}, \"degraded_refits\": {}, \"fallback_suggests\": {}, \
             \"failure_refits_suppressed\": {}, \"jitter_promotions\": {}, \"member_drops\": {}, \
             \"best_is_real\": {}}}",
            json::number(r.faulted_run_ms),
            rec.eval_failures,
            rec.eval_timeouts,
            rec.eval_retries,
            rec.imputed.len(),
            rec.degraded_refits,
            rec.fallback_suggests,
            rec.failure_refits_suppressed,
            rec.jitter_promotions,
            rec.member_drops,
            r.faulted_best_is_real
        ),
        format!(
            "{{\"section\": \"snapshot\", \"roundtrip_ms\": {}, \"bit_identical\": {}}}",
            json::number(r.snapshot_roundtrip_ms),
            r.snapshot_bit_identical
        ),
        format!(
            "{{\"section\": \"store_faults\", \"persist_us\": {}, \"raw_persist_us\": {}, \
             \"dispatch_overhead_pct\": {}, \"sharded_persist_us\": {}, \"tmp_removed\": {}, \
             \"backups_promoted\": {}, \"fault_recovered\": {}}}",
            json::number(r.store_persist_us),
            json::number(r.store_raw_persist_us),
            json::number(r.store_dispatch_overhead_pct),
            json::number(r.store_sharded_persist_us),
            r.store_tmp_removed,
            r.store_backups_promoted,
            r.store_fault_recovered
        ),
    ];
    json::document("nnbo-robustness-v1", "robustness", quick, "sections", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_consistent_and_serialises() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let r = run_robustness_bench(true).expect("quick robustness bench runs");
        assert_eq!(r.clean_total_events, 0, "clean run must be clean");
        assert!(r.clean_path_overhead_pct.is_finite());
        assert!(
            r.clean_path_overhead_pct < 2.0,
            "clean-path overhead {:.3}% breaches the 2% budget",
            r.clean_path_overhead_pct
        );
        assert!(r.faulted_recovery.eval_failures > 0);
        assert!(r.faulted_recovery.eval_timeouts > 0);
        assert!(r.faulted_best_is_real);
        assert!(r.snapshot_bit_identical);
        assert!(r.store_persist_us > 0.0 && r.store_raw_persist_us > 0.0);
        // The honest number lives in the committed full-run JSON, where the
        // budget is < 2 %; here a lenient ceiling guards against a real
        // regression without flaking on filesystem noise.
        assert!(
            r.store_dispatch_overhead_pct.is_finite() && r.store_dispatch_overhead_pct < 10.0,
            "StoreIo dispatch overhead {:.2}% is far beyond the 2% budget",
            r.store_dispatch_overhead_pct
        );
        assert_eq!(
            r.store_tmp_removed, 1,
            "torn write must leave exactly one debris file"
        );
        assert_eq!(
            r.store_backups_promoted, 1,
            "bit-rot must force one promotion"
        );
        assert!(
            r.store_fault_recovered,
            "scrub must hand recovery the acked payload"
        );
        let json = format_robustness_json(&r, true);
        assert!(json.contains("\"schema\": \"nnbo-robustness-v1\""));
        assert!(json.contains("\"section\": \"faulted\""));
        assert!(json.contains("\"section\": \"store_faults\""));
        assert!(!format_robustness_table(&r).is_empty());
    }
}
