//! Parallel-vs-sequential PVT corner-sweep throughput, emitted as
//! `BENCH_pvt.json`.
//!
//! Each entry evaluates the same deterministic batch of suggestions through a
//! [`SweepProblem`] twice — once on the sequential reference path
//! (`with_parallel(false)`, the plain corner loop) and once fanned out over
//! [`nnbo_pool::WorkerPool::global`] via `try_evaluate_batch` — and records
//! the timing of both alongside the *pin* that matters: the two outcome
//! vectors must compare equal bit for bit ([`EvalOutcome`] derives
//! `PartialEq` over exact `f64`s).  A mismatch aborts the benchmark with an
//! error rather than writing a document that quietly blesses a broken
//! fan-out.
//!
//! Workloads:
//!
//! * `opamp_sweep_18` — the Table-I two-stage op-amp over the 18 standard
//!   corners with worst-case aggregation.
//! * `charge_pump_sweep_18` — the Table-II charge pump over the same
//!   corners (per-corner FOM objective); its mismatch sign is seeded by the
//!   corner *index*, so this workload also exercises the corner-context
//!   plumbing.
//! * `opamp_sweep_batched_18` — the op-amp sweep again, but the whole
//!   suggestion batch submitted as one `try_evaluate_batch` call
//!   (suggestions × corners in a single pool batch) against the one-at-a-time
//!   sequential loop — the shape the BO loop's batched evaluation uses.

use nnbo_circuits::{PvtCorner, Testbench};
use nnbo_core::{EvalOutcome, Problem, SweepProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linalg_bench::time_best;
use crate::BenchError;

/// One parallel-vs-sequential sweep comparison.
pub struct PvtBenchEntry {
    /// Workload name.
    pub name: &'static str,
    /// Number of PVT corners per sweep.
    pub corners: usize,
    /// Number of design points (suggestions) evaluated.
    pub points: usize,
    /// Best-of-reps wall time of the sequential reference, nanoseconds.
    pub sequential_ns: f64,
    /// Best-of-reps wall time of the pool fan-out, nanoseconds.
    pub parallel_ns: f64,
    /// `true` when the parallel outcomes compared equal (bit for bit) to
    /// the sequential reference — always `true` in an emitted document,
    /// since a mismatch fails the run instead.
    pub bit_identical: bool,
}

impl PvtBenchEntry {
    /// Sequential-over-parallel speedup (≈ 1 on a single-core box).
    pub fn speedup(&self) -> f64 {
        self.sequential_ns / self.parallel_ns
    }

    /// Parallel sweep throughput in full corner sweeps per second.
    pub fn sweeps_per_sec(&self) -> f64 {
        self.points as f64 / (self.parallel_ns / 1e9)
    }
}

/// Deterministic normalized design points for a `dim`-dimensional problem.
fn design_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.05..0.95)).collect())
        .collect()
}

/// Times one problem's sequential reference against its pool fan-out on the
/// same points and checks the outcomes are identical.  `batched` submits the
/// whole batch as a single `try_evaluate_batch` call on both sides;
/// otherwise each suggestion is evaluated on its own (one pool batch per
/// sweep), which is what the optimization loop's single-suggestion path does.
fn compare<T: Testbench>(
    name: &'static str,
    problem: &SweepProblem<T>,
    points: &[Vec<f64>],
    reps: usize,
    batched: bool,
) -> Result<PvtBenchEntry, BenchError>
where
    SweepProblem<T>: Clone,
{
    let sequential = problem.clone().with_parallel(false);
    let parallel = problem.clone().with_parallel(true);
    let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();

    let run = |p: &SweepProblem<T>| -> Vec<EvalOutcome> {
        if batched {
            p.try_evaluate_batch(&refs)
        } else {
            refs.iter().map(|x| p.try_evaluate(x)).collect()
        }
    };

    let seq_outcomes = run(&sequential);
    let par_outcomes = run(&parallel);
    if seq_outcomes != par_outcomes {
        return Err(format!(
            "{name}: parallel corner sweep diverged from the sequential reference"
        )
        .into());
    }
    if let Some(bad) = seq_outcomes.iter().find(|o| !o.is_ok()) {
        return Err(format!(
            "{name}: benchmark design point unexpectedly failed: {:?}",
            bad.failure_reason()
        )
        .into());
    }

    let sequential_ns = time_best(reps, || {
        std::hint::black_box(run(&sequential));
    });
    let parallel_ns = time_best(reps, || {
        std::hint::black_box(run(&parallel));
    });

    Ok(PvtBenchEntry {
        name,
        corners: problem.sweep().corners().len(),
        points: points.len(),
        sequential_ns,
        parallel_ns,
        bit_identical: true,
    })
}

/// Runs the corner-sweep throughput suite.  `quick` shrinks the suggestion
/// count and repetitions so CI can smoke-test the harness in seconds.
pub fn run_pvt_bench(quick: bool) -> Result<Vec<PvtBenchEntry>, BenchError> {
    let points = if quick { 4 } else { 16 };
    let reps = if quick { 2 } else { 5 };

    let opamp = SweepProblem::opamp(PvtCorner::standard_18());
    let opamp_points = design_points(points, opamp.dim(), 41);
    let charge_pump = SweepProblem::charge_pump(PvtCorner::standard_18());
    let cp_points = design_points(points, charge_pump.dim(), 43);

    Ok(vec![
        compare("opamp_sweep_18", &opamp, &opamp_points, reps, false)?,
        compare(
            "charge_pump_sweep_18",
            &charge_pump,
            &cp_points,
            reps,
            false,
        )?,
        compare("opamp_sweep_batched_18", &opamp, &opamp_points, reps, true)?,
    ])
}

/// Serialises the entries as the `BENCH_pvt.json` document.
pub fn format_pvt_json(entries: &[PvtBenchEntry], quick: bool) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"name\": \"{}\", \"corners\": {}, \"points\": {}, \"sequential_ms\": {}, \"parallel_ms\": {}, \"speedup\": {}, \"sweeps_per_sec\": {}, \"bit_identical\": {}}}",
                e.name,
                e.corners,
                e.points,
                crate::json::number(e.sequential_ns / 1e6),
                crate::json::number(e.parallel_ns / 1e6),
                crate::json::number(e.speedup()),
                crate::json::number(e.sweeps_per_sec()),
                e.bit_identical,
            )
        })
        .collect();
    crate::json::document("nnbo-bench-pvt-v1", "pvt", quick, "entries", &rows)
}

/// Renders a human-readable table of the same entries for stdout.
pub fn format_pvt_table(entries: &[PvtBenchEntry]) -> String {
    let mut out = format!(
        "{:<24} {:>8} {:>7} {:>16} {:>14} {:>9} {:>12} {:>10}\n",
        "workload",
        "corners",
        "points",
        "sequential (ms)",
        "parallel (ms)",
        "speedup",
        "sweeps/s",
        "identical"
    );
    for e in entries {
        out.push_str(&format!(
            "{:<24} {:>8} {:>7} {:>16.3} {:>14.3} {:>8.1}x {:>12.1} {:>10}\n",
            e.name,
            e.corners,
            e.points,
            e.sequential_ns / 1e6,
            e.parallel_ns / 1e6,
            e.speedup(),
            e.sweeps_per_sec(),
            e.bit_identical,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_pins_bit_identity_and_emits_valid_json() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let entries = run_pvt_bench(true).expect("quick pvt bench runs");
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        for expected in [
            "opamp_sweep_18",
            "charge_pump_sweep_18",
            "opamp_sweep_batched_18",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
        for e in &entries {
            assert!(e.bit_identical, "{} diverged", e.name);
            assert_eq!(e.corners, 18);
            assert!(e.sequential_ns > 0.0 && e.parallel_ns > 0.0);
        }
        let json = format_pvt_json(&entries, true);
        assert!(json.contains("\"schema\": \"nnbo-bench-pvt-v1\""));
        assert_eq!(
            json.matches("\"bit_identical\": true").count(),
            entries.len()
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!format_pvt_table(&entries).is_empty());
    }

    #[test]
    fn a_failing_workload_would_fail_the_run_not_the_document() {
        // `compare` refuses to produce an entry whose design points fail —
        // the pin is an error path, not a silently-false flag.
        let problem = SweepProblem::new(
            nnbo_circuits::CornerSweep::new(
                nnbo_circuits::TwoStageOpAmp::stressed(),
                PvtCorner::standard_18(),
            ),
            "stressed",
            0,
            |_: &nnbo_circuits::OpAmpPerformance| nnbo_core::Evaluation::unconstrained(0.0),
        );
        let points = design_points(2, problem.dim(), 7);
        let err = compare("stressed", &problem, &points, 1, false)
            .err()
            .expect("stressed bench points fail");
        assert!(err.to_string().contains("unexpectedly failed"), "{err}");
    }
}
