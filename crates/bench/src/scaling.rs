//! Complexity-scaling experiment (E3): surrogate cost versus training-set size.

use std::time::Instant;

use nnbo_core::{NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{GpConfig, GpModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::BenchError;

/// Timing of both surrogates at one training-set size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of training points.
    pub n: usize,
    /// Classical GP training time in milliseconds.
    pub gp_fit_ms: f64,
    /// Classical GP per-point prediction time in microseconds.
    pub gp_predict_us: f64,
    /// Neural-GP training time in milliseconds.
    pub neural_fit_ms: f64,
    /// Neural-GP per-point prediction time in microseconds.
    pub neural_predict_us: f64,
}

/// Runs the scaling study of §III.D of the paper: fit and prediction cost of the
/// classical GP (`O(N³)` / `O(N²)`) versus the neural GP (`O(N)` / `O(1)`) over a
/// sweep of training-set sizes on a synthetic 10-dimensional problem.
pub fn run_scaling(sizes: &[usize], epochs: usize) -> Result<Vec<ScalingPoint>, BenchError> {
    let dim = 10;
    let mut rng = StdRng::seed_from_u64(99);
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x: &Vec<f64>| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i as f64 + 1.0) * v.sin())
                    .sum()
            })
            .collect();
        let queries: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();

        // Classical GP: keep the optimizer effort fixed so the scaling reflects the
        // per-iteration cost.
        let gp_config = GpConfig {
            restarts: 1,
            max_iters: 30,
            ..GpConfig::default()
        };
        let t0 = Instant::now();
        let gp = GpModel::fit(&xs, &ys, &gp_config, &mut rng)?;
        let gp_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for q in &queries {
            let _ = gp.predict(q);
        }
        let gp_predict_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

        // Neural GP with a fixed number of epochs.
        let nn_config = NeuralGpConfig {
            epochs,
            ..NeuralGpConfig::default()
        };
        let t0 = Instant::now();
        let nngp = NeuralGp::fit(&xs, &ys, &nn_config, &mut rng)?;
        let neural_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for q in &queries {
            let _ = nngp.predict(q);
        }
        let neural_predict_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

        out.push(ScalingPoint {
            n,
            gp_fit_ms,
            gp_predict_us,
            neural_fit_ms,
            neural_predict_us,
        });
    }
    Ok(out)
}

/// Serialises the scaling points as the `BENCH_scaling.json` document so the
/// complexity trajectory can be tracked across PRs (JSON written by hand —
/// the workspace's serde is an offline no-op stand-in).
pub fn format_scaling_json(points: &[ScalingPoint], quick: bool) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"n\": {}, \"gp_fit_ms\": {:.3}, \"gp_predict_us\": {:.3}, \"neural_fit_ms\": {:.3}, \"neural_predict_us\": {:.3}}}",
                p.n,
                p.gp_fit_ms,
                p.gp_predict_us,
                p.neural_fit_ms,
                p.neural_predict_us,
            )
        })
        .collect();
    crate::json::document("nnbo-bench-scaling-v1", "scaling", quick, "points", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_json_is_structurally_valid() {
        let points = vec![ScalingPoint {
            n: 50,
            gp_fit_ms: 1.5,
            gp_predict_us: 10.0,
            neural_fit_ms: 2.0,
            neural_predict_us: 3.0,
        }];
        let json = format_scaling_json(&points, true);
        assert!(json.contains("\"schema\": \"nnbo-bench-scaling-v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scaling_runs_and_reports_every_size() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let points = run_scaling(&[20, 40], 20).expect("scaling study runs");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.gp_fit_ms > 0.0);
            assert!(p.neural_fit_ms > 0.0);
            assert!(p.gp_predict_us > 0.0);
            assert!(p.neural_predict_us > 0.0);
        }
    }
}
