//! Complexity-scaling experiment (E3): surrogate cost versus training-set size.

use std::time::Instant;

use nnbo_baselines::{lineasybo, weibo};
use nnbo_core::problems::WeightedSphere;
use nnbo_core::{BoConfig, LineSubspaceConfig, NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{GpConfig, GpModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::json::number as json_number;
use crate::BenchError;

/// Timing of both surrogates at one training-set size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of training points.
    pub n: usize,
    /// Classical GP training time in milliseconds.
    pub gp_fit_ms: f64,
    /// Classical GP per-point prediction time in microseconds.
    pub gp_predict_us: f64,
    /// Neural-GP training time in milliseconds.
    pub neural_fit_ms: f64,
    /// Neural-GP per-point prediction time in microseconds.
    pub neural_predict_us: f64,
}

/// Runs the scaling study of §III.D of the paper: fit and prediction cost of the
/// classical GP (`O(N³)` / `O(N²)`) versus the neural GP (`O(N)` / `O(1)`) over a
/// sweep of training-set sizes on a synthetic 10-dimensional problem.
pub fn run_scaling(sizes: &[usize], epochs: usize) -> Result<Vec<ScalingPoint>, BenchError> {
    let dim = 10;
    let mut rng = StdRng::seed_from_u64(99);
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x: &Vec<f64>| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i as f64 + 1.0) * v.sin())
                    .sum()
            })
            .collect();
        let queries: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();

        // Classical GP: keep the optimizer effort fixed so the scaling reflects the
        // per-iteration cost.
        let gp_config = GpConfig {
            restarts: 1,
            max_iters: 30,
            ..GpConfig::default()
        };
        let t0 = Instant::now();
        let gp = GpModel::fit(&xs, &ys, &gp_config, &mut rng)?;
        let gp_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for q in &queries {
            let _ = gp.predict(q);
        }
        let gp_predict_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

        // Neural GP with a fixed number of epochs.
        let nn_config = NeuralGpConfig {
            epochs,
            ..NeuralGpConfig::default()
        };
        let t0 = Instant::now();
        let nngp = NeuralGp::fit(&xs, &ys, &nn_config, &mut rng)?;
        let neural_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for q in &queries {
            let _ = nngp.predict(q);
        }
        let neural_predict_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

        out.push(ScalingPoint {
            n,
            gp_fit_ms,
            gp_predict_us,
            neural_fit_ms,
            neural_predict_us,
        });
    }
    Ok(out)
}

/// Measured per-iteration acquisition cost of one strategy at one design
/// dimensionality (the `subspace` section of `BENCH_scaling.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubspacePoint {
    /// Algorithm name ("WEIBO" or "LinEasyBO").
    pub algorithm: String,
    /// Design-space dimensionality.
    pub dim: usize,
    /// Acquisition candidates scored per model-guided iteration.
    pub scored_per_iteration: usize,
    /// Model-guided suggestions timed across all runs.
    pub suggest_calls: usize,
    /// Mean wall-clock cost of one suggestion, in microseconds.
    pub suggest_mean_us: f64,
    /// Best feasible objective over the runs (NaN when none was feasible;
    /// encoded as `null` in the JSON).
    pub best_fom: f64,
    /// Evaluations spent per run.
    pub evaluations: usize,
}

/// The protocol of one subspace-scaling sweep: repeated seeded runs of
/// full-pool WEIBO and LinEasyBO on the [`WeightedSphere`] family at each
/// dimensionality, under the *same* pool budget, with the per-suggestion
/// wall clock taken from [`nnbo_core::SuggestCost`].
#[derive(Debug, Clone, Copy)]
pub struct SubspaceProtocol {
    /// Design dimensionalities to sweep.
    pub dims: &'static [usize],
    /// Repeated runs per (dimension, algorithm) cell.
    pub runs: usize,
    /// Initial space-filling samples per run.
    pub initial: usize,
    /// Total evaluation budget per run.
    pub budget: usize,
    /// Candidate-pool size the full-pool search scores each iteration
    /// (plus `pool / 4` local candidates, as in the table protocols).
    pub pool: usize,
}

impl SubspaceProtocol {
    /// The committed full-scale sweep: D ∈ {20, 50} at the paper-scale pool.
    pub fn full() -> Self {
        SubspaceProtocol {
            dims: &[20, 50],
            runs: 2,
            initial: 10,
            budget: 30,
            pool: 1024,
        }
    }

    /// A seconds-scale sweep for CI smoke runs.
    pub fn quick() -> Self {
        SubspaceProtocol {
            dims: &[8, 20],
            runs: 1,
            initial: 6,
            budget: 12,
            pool: 128,
        }
    }
}

/// Runs the subspace-scaling study: at every dimensionality, full-pool WEIBO
/// and LinEasyBO optimize the same [`WeightedSphere`] instance under the same
/// seeds and budgets, and each row reports the measured mean per-suggestion
/// wall clock.  The line search scores a constant number of candidates
/// ([`LineSubspaceConfig::points_per_iteration`]) however large the pool the
/// full-pool search has to sweep, which is the scaling claim the committed
/// document pins.
pub fn run_subspace_scaling(protocol: &SubspaceProtocol) -> Result<Vec<SubspacePoint>, BenchError> {
    let mut out = Vec::with_capacity(protocol.dims.len() * 2);
    for &dim in protocol.dims {
        let problem = WeightedSphere::new(dim);
        for line in [false, true] {
            let mut calls = 0usize;
            let mut nanos = 0u64;
            let mut best = f64::NAN;
            for run in 0..protocol.runs {
                let mut config =
                    BoConfig::new(protocol.initial, protocol.budget).with_seed(2026 + run as u64);
                config.candidate_pool = protocol.pool;
                config.local_candidates = (protocol.pool / 4).max(16);
                let result = if line {
                    lineasybo(config).run(&problem)?
                } else {
                    weibo(config).run(&problem)?
                };
                let cost = result.suggest_cost();
                calls += cost.calls;
                nanos += cost.nanos;
                if let Some(b) = result.best_objective() {
                    best = if best.is_nan() { b } else { best.min(b) };
                }
            }
            out.push(SubspacePoint {
                algorithm: if line { "LinEasyBO" } else { "WEIBO" }.to_string(),
                dim,
                scored_per_iteration: if line {
                    LineSubspaceConfig::default().points_per_iteration()
                } else {
                    protocol.pool + (protocol.pool / 4).max(16)
                },
                suggest_calls: calls,
                suggest_mean_us: if calls == 0 {
                    f64::NAN
                } else {
                    nanos as f64 / calls as f64 / 1e3
                },
                best_fom: best,
                evaluations: protocol.budget,
            });
        }
    }
    Ok(out)
}

/// Serialises the scaling points plus the subspace study as the
/// `BENCH_scaling.json` document so the complexity trajectory can be tracked
/// across PRs (JSON written by hand — the workspace's serde is an offline
/// no-op stand-in).
pub fn format_scaling_json(
    points: &[ScalingPoint],
    subspace: &[SubspacePoint],
    quick: bool,
) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"n\": {}, \"gp_fit_ms\": {:.3}, \"gp_predict_us\": {:.3}, \"neural_fit_ms\": {:.3}, \"neural_predict_us\": {:.3}}}",
                p.n,
                p.gp_fit_ms,
                p.gp_predict_us,
                p.neural_fit_ms,
                p.neural_predict_us,
            )
        })
        .collect();
    let subspace_rows: Vec<String> = subspace
        .iter()
        .map(|p| {
            format!(
                "{{\"algorithm\": \"{}\", \"dim\": {}, \"scored_per_iteration\": {}, \"suggest_calls\": {}, \"suggest_mean_us\": {}, \"best_fom\": {}, \"evaluations\": {}}}",
                p.algorithm,
                p.dim,
                p.scored_per_iteration,
                p.suggest_calls,
                json_number(p.suggest_mean_us),
                json_number(p.best_fom),
                p.evaluations,
            )
        })
        .collect();
    crate::json::document_sections(
        "nnbo-bench-scaling-v2",
        "scaling",
        quick,
        &[("points", &rows), ("subspace", &subspace_rows)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_json_is_structurally_valid() {
        let points = vec![ScalingPoint {
            n: 50,
            gp_fit_ms: 1.5,
            gp_predict_us: 10.0,
            neural_fit_ms: 2.0,
            neural_predict_us: 3.0,
        }];
        let subspace = vec![SubspacePoint {
            algorithm: "LinEasyBO".into(),
            dim: 50,
            scored_per_iteration: 96,
            suggest_calls: 40,
            suggest_mean_us: 120.0,
            best_fom: f64::NAN,
            evaluations: 30,
        }];
        let json = format_scaling_json(&points, &subspace, true);
        assert!(json.contains("\"schema\": \"nnbo-bench-scaling-v2\""));
        assert!(json.contains("\"subspace\": ["));
        assert!(json.contains("\"best_fom\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// The structural half of the scaling claim holds by construction at the
    /// committed full protocol: the full-pool search scores ≥ 5× the line
    /// search's constant per-iteration budget (the wall-clock half lands in
    /// the committed `BENCH_scaling.json`).
    #[test]
    fn full_subspace_protocol_pins_the_five_fold_pool_ratio() {
        let p = SubspaceProtocol::full();
        assert!(p.dims.contains(&50), "the D = 50 claim needs a D = 50 cell");
        let pool_scored = p.pool + (p.pool / 4).max(16);
        let line_scored = LineSubspaceConfig::default().points_per_iteration();
        assert!(
            pool_scored >= 5 * line_scored,
            "{pool_scored} vs {line_scored}"
        );
    }

    #[test]
    fn subspace_scaling_reports_both_strategies_at_every_dimension() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let protocol = SubspaceProtocol {
            dims: &[4],
            runs: 1,
            initial: 5,
            budget: 9,
            pool: 512,
        };
        let rows = run_subspace_scaling(&protocol).expect("subspace study runs");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].algorithm, "WEIBO");
        assert_eq!(rows[1].algorithm, "LinEasyBO");
        for r in &rows {
            assert_eq!(r.dim, 4);
            // One timed suggestion per model-guided iteration per run.
            assert_eq!(
                r.suggest_calls,
                (protocol.budget - protocol.initial) * protocol.runs
            );
            assert!(r.suggest_mean_us > 0.0);
            assert!(r.best_fom.is_finite(), "the sphere family is feasible");
        }
        assert!(rows[0].scored_per_iteration > rows[1].scored_per_iteration);
    }

    #[test]
    fn scaling_runs_and_reports_every_size() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let points = run_scaling(&[20, 40], 20).expect("scaling study runs");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.gp_fit_ms > 0.0);
            assert!(p.neural_fit_ms > 0.0);
            assert!(p.gp_predict_us > 0.0);
            assert!(p.neural_predict_us > 0.0);
        }
    }
}
