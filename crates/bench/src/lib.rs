//! Reproduction harness: regenerates the paper's tables and the complexity figure.
//!
//! The functions here drive every optimizer (the paper's neural-GP BO, WEIBO,
//! GASPAD and DE) over the two circuit testbenches with the protocol of the paper's
//! experimental section, and aggregate repeated runs into the rows of Table I and
//! Table II.  The `reproduce` binary is a thin CLI over this module, and the
//! integration tests exercise the same entry points at reduced scale.

#![warn(missing_docs)]

mod linalg_bench;
mod protocol;
mod scaling;
mod tables;

pub use linalg_bench::{
    format_linalg_json, format_linalg_table, run_linalg_bench, LinalgBenchEntry,
};
pub use protocol::{Algorithm, Protocol};
pub use scaling::{run_scaling, ScalingPoint};
pub use tables::{
    format_table1, format_table2, run_ablation_acquisition, run_ablation_ensemble, run_algorithm,
    run_table1, run_table2, AblationRow, Table1Row, Table2Row,
};
