//! Reproduction harness: regenerates the paper's tables and the complexity figure.
//!
//! The functions here drive every optimizer (the paper's neural-GP BO, WEIBO,
//! GASPAD and DE) over the two circuit testbenches with the protocol of the paper's
//! experimental section, and aggregate repeated runs into the rows of Table I and
//! Table II.  The `reproduce` binary is a thin CLI over this module, and the
//! integration tests exercise the same entry points at reduced scale.

#![warn(missing_docs)]

mod fit_bench;
mod json;
mod linalg_bench;
mod protocol;
mod scaling;
mod tables;

pub use fit_bench::{fit_dataset, format_fit_json, format_fit_table, run_fit_bench, FitBenchEntry};
pub use linalg_bench::{
    format_linalg_json, format_linalg_table, run_linalg_bench, LinalgBenchEntry,
};
pub use protocol::{Algorithm, Protocol};
pub use scaling::{format_scaling_json, run_scaling, ScalingPoint};
pub use tables::{
    format_table1, format_table1_json, format_table2, format_table2_json, run_ablation_acquisition,
    run_ablation_ensemble, run_algorithm, run_table1, run_table2, AblationRow, Table1Row,
    Table2Row,
};
