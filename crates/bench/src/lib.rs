//! Reproduction harness: regenerates the paper's tables and the complexity figure.
//!
//! The functions here drive every optimizer (the paper's neural-GP BO, WEIBO,
//! GASPAD and DE) over the two circuit testbenches with the protocol of the paper's
//! experimental section, and aggregate repeated runs into the rows of Table I and
//! Table II.  The `reproduce` binary is a thin CLI over this module, and the
//! integration tests exercise the same entry points at reduced scale.

#![warn(missing_docs)]

/// Serialises the library unit tests that toggle the process-global kernel
/// dispatch ([`nnbo_linalg::force_portable_kernels`]) *and* the numeric
/// tests a mid-run flip would perturb (surrogate fits, lifecycle runs, BO
/// trajectories): the default test harness runs them on concurrent threads,
/// and a dispatch flip landing mid-factorization would mix packed and
/// portable kernels nondeterministically.
#[cfg(test)]
pub(crate) static TEST_DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Boxed error used by every fallible harness entry point: surrogate fits,
/// BO runs and service orchestration all propagate up to the `reproduce`
/// binary, which reports the failure and exits nonzero instead of panicking
/// mid-experiment.
pub type BenchError = Box<dyn std::error::Error + Send + Sync>;

mod fit_bench;
mod json;
mod linalg_bench;
mod predict_bench;
mod protocol;
mod pvt_bench;
mod robustness_bench;
mod scaling;
mod serve_bench;
mod tables;

pub use fit_bench::{
    fit_dataset, format_fit_json, format_fit_table, run_fit_bench, run_refit_lifecycle,
    FitBenchEntry, LifecycleOutcome,
};
pub use linalg_bench::{
    format_linalg_json, format_linalg_table, run_linalg_bench, LinalgBenchEntry,
};
pub use predict_bench::{format_predict_json, format_predict_table, run_predict_bench};
pub use protocol::{Algorithm, Protocol};
pub use pvt_bench::{format_pvt_json, format_pvt_table, run_pvt_bench, PvtBenchEntry};
pub use robustness_bench::{
    format_robustness_json, format_robustness_table, run_robustness_bench, RobustnessReport,
};
pub use scaling::{
    format_scaling_json, run_scaling, run_subspace_scaling, ScalingPoint, SubspacePoint,
    SubspaceProtocol,
};
pub use serve_bench::{format_serve_json, format_serve_table, run_serve_bench, ServeBenchReport};
pub use tables::{
    format_table1, format_table1_json, format_table2, format_table2_highdim, format_table2_json,
    run_ablation_acquisition, run_ablation_ensemble, run_algorithm, run_table1, run_table2,
    run_table2_highdim, AblationRow, HighDimRow, Table1Row, Table2Row, HIGHDIM_DIM,
};
