//! Packed-vs-blocked timings of the batched *prediction* path, emitted as
//! `BENCH_predict.json` (companion of `BENCH_linalg.json` for the kernels and
//! `BENCH_fit.json` for the fit path).
//!
//! Every entry compares the portable blocked-scalar path (forced through
//! [`nnbo_linalg::force_portable_kernels`]) against the packed AVX2+FMA path
//! with the fused `exp` elementwise kernel on the same inputs — on machines
//! without AVX2 both sides run the portable code and the speedups read ≈ 1;
//! the document's `isa` header says which case applies:
//!
//! * `gp_cross_kernel` — the cross-covariance block `K(Q, X)` alone: one
//!   packed GEMM over the scaled rows plus the fused
//!   [`nnbo_linalg::sq_exp_apply`] pass, vs the blocked-scalar product and
//!   the scalar `f64::exp` loop.
//! * `gp_predict_batch` / `neural_predict_batch` — the full batched
//!   prediction (cross kernel / feature forward pass, mean matvec, batched
//!   triangular solve) on both dispatch paths.
//! * `gp_predict_batch_into` — same dispatch path on both sides: the
//!   allocating [`nnbo_gp::GpModel::predict_batch`] vs the buffer-reusing
//!   [`nnbo_gp::GpModel::predict_batch_into`] in steady state (what the
//!   acquisition scoring loop runs).

use nnbo_core::{NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{ArdSquaredExponential, CrossScratch, GpConfig, GpModel, GpPredictScratch};
use nnbo_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linalg_bench::{time_best, LinalgBenchEntry};
use crate::BenchError;

fn dataset(n: usize, dim: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            x.iter()
                .enumerate()
                .map(|(i, v)| ((i + 1) as f64 * v).sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

/// Runs the prediction-path comparison suite.  `quick` shrinks sizes and
/// repetition counts so CI can smoke-test the harness in seconds.
pub fn run_predict_bench(quick: bool) -> Result<Vec<LinalgBenchEntry>, BenchError> {
    let train_n = if quick { 64 } else { 256 };
    let batch = if quick { 128 } else { 512 };
    let dim = 10;
    let reps = if quick { 3 } else { 7 };
    let mut rng = StdRng::seed_from_u64(113);
    let (xs, ys) = dataset(train_n, dim, &mut rng);
    let queries: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let mut entries = Vec::new();

    // 1. Cross-kernel block alone: packed GEMM + fused exp vs blocked scalar.
    let kernel = ArdSquaredExponential::new(
        1.4,
        (0..dim).map(|d| 0.4 + 0.1 * d as f64).collect::<Vec<_>>(),
    );
    let x_mat = Matrix::from_rows(&xs);
    let q_mat = Matrix::from_rows(&queries);
    let prepared = kernel.prepare(&x_mat);
    let mut cross_out = Matrix::zeros(0, 0);
    let mut cross_scratch = CrossScratch::new();
    nnbo_linalg::force_portable_kernels(true);
    let portable_cross = time_best(reps, || {
        kernel.cross_with_into(&q_mat, &prepared, &mut cross_out, &mut cross_scratch);
        std::hint::black_box(&cross_out);
    });
    nnbo_linalg::force_portable_kernels(false);
    let packed_cross = time_best(reps, || {
        kernel.cross_with_into(&q_mat, &prepared, &mut cross_out, &mut cross_scratch);
        std::hint::black_box(&cross_out);
    });
    entries.push(LinalgBenchEntry {
        name: "gp_cross_kernel",
        n: train_n,
        baseline_ns: portable_cross,
        optimized_ns: packed_cross,
    });

    // 2. Full batched GP prediction on both dispatch paths.
    let gp_config = GpConfig {
        restarts: 1,
        max_iters: 10,
        ..GpConfig::default()
    };
    let gp = GpModel::fit(&xs, &ys, &gp_config, &mut StdRng::seed_from_u64(3))?;
    nnbo_linalg::force_portable_kernels(true);
    let portable_gp = time_best(reps, || {
        std::hint::black_box(gp.predict_batch(&queries));
    });
    nnbo_linalg::force_portable_kernels(false);
    let packed_gp = time_best(reps, || {
        std::hint::black_box(gp.predict_batch(&queries));
    });
    entries.push(LinalgBenchEntry {
        name: "gp_predict_batch",
        n: train_n,
        baseline_ns: portable_gp,
        optimized_ns: packed_gp,
    });

    // 3. Allocating vs buffer-reusing batched prediction (same dispatch).
    let mut out = Vec::new();
    let mut scratch = GpPredictScratch::new();
    gp.predict_batch_into(&queries, &mut out, &mut scratch); // grow buffers
    let into_ns = time_best(reps, || {
        gp.predict_batch_into(&queries, &mut out, &mut scratch);
        std::hint::black_box(&out);
    });
    entries.push(LinalgBenchEntry {
        name: "gp_predict_batch_into",
        n: train_n,
        baseline_ns: packed_gp,
        optimized_ns: into_ns,
    });

    // 4. The paper's surrogate on both dispatch paths.
    let nn_config = NeuralGpConfig {
        epochs: 40,
        ..NeuralGpConfig::default()
    };
    let neural = NeuralGp::fit(&xs, &ys, &nn_config, &mut StdRng::seed_from_u64(4))?;
    nnbo_linalg::force_portable_kernels(true);
    let portable_ngp = time_best(reps, || {
        std::hint::black_box(neural.predict_batch(&queries));
    });
    nnbo_linalg::force_portable_kernels(false);
    let packed_ngp = time_best(reps, || {
        std::hint::black_box(neural.predict_batch(&queries));
    });
    entries.push(LinalgBenchEntry {
        name: "neural_predict_batch",
        n: train_n,
        baseline_ns: portable_ngp,
        optimized_ns: packed_ngp,
    });

    Ok(entries)
}

/// Serialises the entries as the `BENCH_predict.json` document.
pub fn format_predict_json(entries: &[LinalgBenchEntry], quick: bool) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"name\": \"{}\", \"n\": {}, \"baseline_ns\": {:.0}, \"optimized_ns\": {:.0}, \"speedup\": {:.2}}}",
                e.name,
                e.n,
                e.baseline_ns,
                e.optimized_ns,
                e.speedup(),
            )
        })
        .collect();
    crate::json::document("nnbo-bench-predict-v1", "predict", quick, "entries", &rows)
}

/// Renders a human-readable table of the same entries for stdout.
pub fn format_predict_table(entries: &[LinalgBenchEntry]) -> String {
    let mut out = format!(
        "{:<24} {:>6} {:>16} {:>16} {:>9}\n",
        "workload", "N", "baseline (ms)", "optimized (ms)", "speedup"
    );
    for e in entries {
        out.push_str(&format!(
            "{:<24} {:>6} {:>16.3} {:>16.3} {:>8.1}x\n",
            e.name,
            e.n,
            e.baseline_ns / 1e6,
            e.optimized_ns / 1e6,
            e.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_all_workloads_and_valid_json() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let entries = run_predict_bench(true).expect("quick predict bench runs");
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        for expected in [
            "gp_cross_kernel",
            "gp_predict_batch",
            "gp_predict_batch_into",
            "neural_predict_batch",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
        let json = format_predict_json(&entries, true);
        assert!(json.contains("\"schema\": \"nnbo-bench-predict-v1\""));
        assert_eq!(json.matches("\"name\"").count(), entries.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!format_predict_table(&entries).is_empty());
    }
}
