//! Table I / Table II reproduction and the ablation experiments.

use nnbo_baselines::{lineasybo, weibo, DeConfig, DifferentialEvolution, Gaspad, GaspadConfig};
use nnbo_core::acquisition::AcquisitionKind;
use nnbo_core::problems::{ChargePumpProblem, OpAmpProblem, WeightedSphere};
use nnbo_core::{
    BayesOpt, EnsembleConfig, LineSubspaceConfig, OptimizationResult, Problem, RunStatistics,
    RunSummary,
};
use serde::{Deserialize, Serialize};

use crate::json::number as json_number;
use crate::protocol::{Algorithm, Protocol};
use crate::BenchError;

/// One row of the reproduced Table I (two-stage op-amp).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean UGF of the best designs, in MHz.
    pub ugf_mhz: f64,
    /// Mean phase margin of the best designs, in degrees.
    pub pm_deg: f64,
    /// Mean best GAIN (dB) over the successful runs.
    pub mean_gain: f64,
    /// Median best GAIN (dB).
    pub median_gain: f64,
    /// Best GAIN (dB) over all runs.
    pub best_gain: f64,
    /// Worst GAIN (dB) over the successful runs.
    pub worst_gain: f64,
    /// Average number of simulations to convergence.
    pub avg_sims: f64,
    /// Success count formatted as "k/n".
    pub success: String,
}

/// One row of the reproduced Table II (charge pump).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean `diff1` (µA) of the best designs.
    pub diff1: f64,
    /// Mean `diff2` (µA).
    pub diff2: f64,
    /// Mean `diff3` (µA).
    pub diff3: f64,
    /// Mean `diff4` (µA).
    pub diff4: f64,
    /// Mean `deviation` (µA).
    pub deviation: f64,
    /// Mean best FOM over the successful runs.
    pub mean_fom: f64,
    /// Median best FOM.
    pub median_fom: f64,
    /// Best FOM over all runs.
    pub best_fom: f64,
    /// Worst FOM over the successful runs.
    pub worst_fom: f64,
    /// Average number of simulations to convergence.
    pub avg_sims: f64,
    /// Success count formatted as "k/n".
    pub success: String,
}

/// One row of an ablation study (objective statistics only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// The varied setting ("K = 3", "wEI", ...).
    pub setting: String,
    /// Aggregate statistics of the best objective over the runs.
    pub stats: Option<RunStatistics>,
}

/// Runs one algorithm once on `problem` under `protocol` with the given run index
/// (which offsets the random seed).
pub fn run_algorithm(
    algorithm: Algorithm,
    problem: &dyn Problem,
    protocol: &Protocol,
    run: usize,
) -> Result<OptimizationResult, BenchError> {
    let seed = protocol.seed + run as u64;
    Ok(match algorithm {
        Algorithm::NeuralBo => {
            BayesOpt::neural_with(protocol.bo_config(run), protocol.ensemble_config())
                .run(problem)?
        }
        Algorithm::Weibo => weibo(protocol.bo_config(run)).run(problem)?,
        Algorithm::LinEasyBo => lineasybo(protocol.bo_config(run)).run(problem)?,
        Algorithm::Gaspad => {
            let population = protocol.initial_samples.max(10);
            Gaspad::new(GaspadConfig::new(population, protocol.max_sims_gaspad).with_seed(seed))
                .run(problem)
        }
        Algorithm::De => {
            let population = (protocol.max_sims_de / 20).clamp(10, 50);
            DifferentialEvolution::new(
                DeConfig::new(population, protocol.max_sims_de).with_seed(seed),
            )
            .run(problem)
        }
    })
}

fn summaries_for(
    algorithm: Algorithm,
    problem: &dyn Problem,
    protocol: &Protocol,
    tolerance: f64,
) -> Result<(Vec<RunSummary>, Vec<OptimizationResult>), BenchError> {
    let mut summaries = Vec::with_capacity(protocol.runs);
    let mut results = Vec::with_capacity(protocol.runs);
    for run in 0..protocol.runs {
        let result = run_algorithm(algorithm, problem, protocol, run)?;
        summaries.push(RunSummary::from_result(&result, tolerance));
        results.push(result);
    }
    Ok((summaries, results))
}

/// Reproduces Table I: the two-stage op-amp sizing comparison.
pub fn run_table1(protocol: &Protocol) -> Result<Vec<Table1Row>, BenchError> {
    let problem = OpAmpProblem::new();
    let mut rows = Vec::new();
    for algorithm in Algorithm::all() {
        let (summaries, _) = summaries_for(algorithm, &problem, protocol, 0.5)?;
        let stats = RunStatistics::from_summaries(&summaries);
        // Circuit performances of each run's best design, for the UGF/PM rows.
        let mut ugf = Vec::new();
        let mut pm = Vec::new();
        for s in &summaries {
            if let Some(x) = &s.best_point {
                let perf = problem.performances(x);
                ugf.push(perf.ugf_hz / 1e6);
                pm.push(perf.pm_deg);
            }
        }
        let (mean_gain, median_gain, best_gain, worst_gain, avg_sims, success) = match &stats {
            Some(st) => (
                -st.mean,
                -st.median,
                -st.best,
                -st.worst,
                st.avg_simulations,
                st.success_rate(),
            ),
            None => (
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                format!("0/{}", protocol.runs),
            ),
        };
        rows.push(Table1Row {
            algorithm: algorithm.name().to_string(),
            ugf_mhz: nnbo_linalg::mean(&ugf),
            pm_deg: nnbo_linalg::mean(&pm),
            mean_gain,
            median_gain,
            best_gain,
            worst_gain,
            avg_sims,
            success,
        });
    }
    Ok(rows)
}

/// Reproduces Table II: the charge-pump sizing comparison over 18 PVT corners.
pub fn run_table2(protocol: &Protocol) -> Result<Vec<Table2Row>, BenchError> {
    let problem = ChargePumpProblem::new();
    let mut rows = Vec::new();
    for algorithm in Algorithm::all() {
        let (summaries, _) = summaries_for(algorithm, &problem, protocol, 0.05)?;
        let stats = RunStatistics::from_summaries(&summaries);
        let mut diff = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let mut deviation = Vec::new();
        for s in &summaries {
            if let Some(x) = &s.best_point {
                let perf = problem.performances(x);
                diff[0].push(perf.diff1);
                diff[1].push(perf.diff2);
                diff[2].push(perf.diff3);
                diff[3].push(perf.diff4);
                deviation.push(perf.deviation);
            }
        }
        let (mean_fom, median_fom, best_fom, worst_fom, avg_sims, success) = match &stats {
            Some(st) => (
                st.mean,
                st.median,
                st.best,
                st.worst,
                st.avg_simulations,
                st.success_rate(),
            ),
            None => (
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                format!("0/{}", protocol.runs),
            ),
        };
        rows.push(Table2Row {
            algorithm: algorithm.name().to_string(),
            diff1: nnbo_linalg::mean(&diff[0]),
            diff2: nnbo_linalg::mean(&diff[1]),
            diff3: nnbo_linalg::mean(&diff[2]),
            diff4: nnbo_linalg::mean(&diff[3]),
            deviation: nnbo_linalg::mean(&deviation),
            mean_fom,
            median_fom,
            best_fom,
            worst_fom,
            avg_sims,
            success,
        });
    }
    Ok(rows)
}

/// Dimensionality of the high-dimensional synthesis family reported in the
/// `highdim` section of `BENCH_table2.json`.
pub const HIGHDIM_DIM: usize = 20;

/// One row of the high-dimensional companion study: full-pool WEIBO versus
/// LinEasyBO's line-subspace search on the [`WeightedSphere`] family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HighDimRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Design-space dimensionality.
    pub dim: usize,
    /// Acquisition candidates scored per model-guided iteration — the
    /// structural cost the line search cuts (constant versus pool-sized).
    pub scored_per_iteration: usize,
    /// Mean best objective over the successful runs.
    pub mean_fom: f64,
    /// Median best objective.
    pub median_fom: f64,
    /// Best objective over all runs.
    pub best_fom: f64,
    /// Worst best-objective over the successful runs.
    pub worst_fom: f64,
    /// Average number of simulations to convergence.
    pub avg_sims: f64,
    /// Success count formatted as "k/n".
    pub success: String,
}

/// Acquisition candidates one model-guided iteration scores under `protocol`:
/// the full candidate pool for the pool-search algorithms, the constant line
/// budget for LinEasyBO.
fn scored_per_iteration(algorithm: Algorithm, protocol: &Protocol) -> usize {
    match algorithm {
        Algorithm::LinEasyBo => LineSubspaceConfig::default().points_per_iteration(),
        _ => {
            let config = protocol.bo_config(0);
            config.candidate_pool + config.local_candidates
        }
    }
}

/// The high-dimensional companion to Table II: WEIBO's full-pool search
/// against LinEasyBO on the D = [`HIGHDIM_DIM`] [`WeightedSphere`] synthesis
/// family, under the same budget and seeds.  The paper's tables stop at 10
/// design variables; this section pins the claim that the line-subspace
/// search keeps the final quality while scoring a constant, pool-independent
/// number of candidates per iteration.
pub fn run_table2_highdim(protocol: &Protocol) -> Result<Vec<HighDimRow>, BenchError> {
    let problem = WeightedSphere::new(HIGHDIM_DIM);
    let mut rows = Vec::new();
    for algorithm in [Algorithm::Weibo, Algorithm::LinEasyBo] {
        let (summaries, _) = summaries_for(algorithm, &problem, protocol, 0.05)?;
        let stats = RunStatistics::from_summaries(&summaries);
        let (mean_fom, median_fom, best_fom, worst_fom, avg_sims, success) = match &stats {
            Some(st) => (
                st.mean,
                st.median,
                st.best,
                st.worst,
                st.avg_simulations,
                st.success_rate(),
            ),
            None => (
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                format!("0/{}", protocol.runs),
            ),
        };
        rows.push(HighDimRow {
            algorithm: algorithm.name().to_string(),
            dim: HIGHDIM_DIM,
            scored_per_iteration: scored_per_iteration(algorithm, protocol),
            mean_fom,
            median_fom,
            best_fom,
            worst_fom,
            avg_sims,
            success,
        });
    }
    Ok(rows)
}

/// Ablation E4: optimization quality versus ensemble size `K` on the op-amp problem.
pub fn run_ablation_ensemble(
    protocol: &Protocol,
    members: &[usize],
) -> Result<Vec<AblationRow>, BenchError> {
    let problem = OpAmpProblem::new();
    let mut rows = Vec::with_capacity(members.len());
    for &k in members {
        let mut summaries = Vec::with_capacity(protocol.runs);
        for run in 0..protocol.runs {
            let ensemble = EnsembleConfig {
                members: k,
                ..protocol.ensemble_config()
            };
            let result = BayesOpt::neural_with(protocol.bo_config(run), ensemble).run(&problem)?;
            summaries.push(RunSummary::from_result(&result, 0.5));
        }
        rows.push(AblationRow {
            setting: format!("K = {k}"),
            stats: RunStatistics::from_summaries(&summaries),
        });
    }
    Ok(rows)
}

/// Ablation E5: acquisition-function comparison on the op-amp problem.
pub fn run_ablation_acquisition(protocol: &Protocol) -> Result<Vec<AblationRow>, BenchError> {
    let problem = OpAmpProblem::new();
    let kinds = [
        ("wEI", AcquisitionKind::WeightedExpectedImprovement),
        ("EI+penalty", AcquisitionKind::ExpectedImprovement),
        ("LCB", AcquisitionKind::LowerConfidenceBound { kappa: 2.0 }),
        ("PI", AcquisitionKind::ProbabilityOfImprovement),
    ];
    let mut rows = Vec::with_capacity(kinds.len());
    for (name, kind) in &kinds {
        let mut summaries = Vec::with_capacity(protocol.runs);
        for run in 0..protocol.runs {
            let config = protocol.bo_config(run).with_acquisition(*kind);
            let result = BayesOpt::neural_with(config, protocol.ensemble_config()).run(&problem)?;
            summaries.push(RunSummary::from_result(&result, 0.5));
        }
        rows.push(AblationRow {
            setting: (*name).to_string(),
            stats: RunStatistics::from_summaries(&summaries),
        });
    }
    Ok(rows)
}

/// Formats Table I in the layout of the paper.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("Table I: two-stage operational amplifier (GAIN in dB, UGF in MHz, PM in deg)\n");
    s.push_str(&format!(
        "{:<10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}\n",
        "Alg", "UGF", "PM", "mean", "median", "best", "worst", "Avg.#Sim", "Success"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>9.2} {:>8.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>11.1} {:>9}\n",
            r.algorithm,
            r.ugf_mhz,
            r.pm_deg,
            r.mean_gain,
            r.median_gain,
            r.best_gain,
            r.worst_gain,
            r.avg_sims,
            r.success
        ));
    }
    s
}

/// Formats Table II in the layout of the paper.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    s.push_str("Table II: charge pump over 18 PVT corners (all values in uA)\n");
    s.push_str(&format!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>9} {:>7} {:>8} {:>7} {:>7} {:>10} {:>8}\n",
        "Alg",
        "diff1",
        "diff2",
        "diff3",
        "diff4",
        "deviation",
        "mean",
        "median",
        "best",
        "worst",
        "Avg.#Sim",
        "Success"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>9.2} {:>7.2} {:>8.2} {:>7.2} {:>7.2} {:>10.1} {:>8}\n",
            r.algorithm,
            r.diff1,
            r.diff2,
            r.diff3,
            r.diff4,
            r.deviation,
            r.mean_fom,
            r.median_fom,
            r.best_fom,
            r.worst_fom,
            r.avg_sims,
            r.success
        ));
    }
    s
}

/// Formats the high-dimensional companion study as text.
pub fn format_table2_highdim(rows: &[HighDimRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "High-dimensional companion: WeightedSphere, D = {HIGHDIM_DIM} (objective, lower is better)\n"
    ));
    s.push_str(&format!(
        "{:<10} {:>5} {:>12} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}\n",
        "Alg", "D", "scored/iter", "mean", "median", "best", "worst", "Avg.#Sim", "Success"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>5} {:>12} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10.1} {:>8}\n",
            r.algorithm,
            r.dim,
            r.scored_per_iteration,
            r.mean_fom,
            r.median_fom,
            r.best_fom,
            r.worst_fom,
            r.avg_sims,
            r.success
        ));
    }
    s
}

/// Serialises Table I rows as the `BENCH_table1.json` document so the result
/// trajectory can be tracked across PRs (JSON written by hand — the
/// workspace's serde is an offline no-op stand-in).
pub fn format_table1_json(rows: &[Table1Row], quick: bool) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"algorithm\": \"{}\", \"ugf_mhz\": {}, \"pm_deg\": {}, \"mean_gain\": {}, \"median_gain\": {}, \"best_gain\": {}, \"worst_gain\": {}, \"avg_sims\": {}, \"success\": \"{}\"}}",
                r.algorithm,
                json_number(r.ugf_mhz),
                json_number(r.pm_deg),
                json_number(r.mean_gain),
                json_number(r.median_gain),
                json_number(r.best_gain),
                json_number(r.worst_gain),
                json_number(r.avg_sims),
                r.success,
            )
        })
        .collect();
    crate::json::document("nnbo-bench-table1-v1", "table1", quick, "rows", &rendered)
}

/// Serialises Table II rows plus the high-dimensional companion study as the
/// `BENCH_table2.json` document (see [`format_table1_json`]): a `rows` array
/// for the charge pump and a `highdim` array for the D = 20 family.
pub fn format_table2_json(rows: &[Table2Row], highdim: &[HighDimRow], quick: bool) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"algorithm\": \"{}\", \"diff1\": {}, \"diff2\": {}, \"diff3\": {}, \"diff4\": {}, \"deviation\": {}, \"mean_fom\": {}, \"median_fom\": {}, \"best_fom\": {}, \"worst_fom\": {}, \"avg_sims\": {}, \"success\": \"{}\"}}",
                r.algorithm,
                json_number(r.diff1),
                json_number(r.diff2),
                json_number(r.diff3),
                json_number(r.diff4),
                json_number(r.deviation),
                json_number(r.mean_fom),
                json_number(r.median_fom),
                json_number(r.best_fom),
                json_number(r.worst_fom),
                json_number(r.avg_sims),
                r.success,
            )
        })
        .collect();
    let rendered_highdim: Vec<String> = highdim
        .iter()
        .map(|r| {
            format!(
                "{{\"algorithm\": \"{}\", \"dim\": {}, \"scored_per_iteration\": {}, \"mean_fom\": {}, \"median_fom\": {}, \"best_fom\": {}, \"worst_fom\": {}, \"avg_sims\": {}, \"success\": \"{}\"}}",
                r.algorithm,
                r.dim,
                r.scored_per_iteration,
                json_number(r.mean_fom),
                json_number(r.median_fom),
                json_number(r.best_fom),
                json_number(r.worst_fom),
                json_number(r.avg_sims),
                r.success,
            )
        })
        .collect();
    crate::json::document_sections(
        "nnbo-bench-table2-v2",
        "table2",
        quick,
        &[("rows", &rendered), ("highdim", &rendered_highdim)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A protocol small enough for unit tests.
    fn tiny_protocol() -> Protocol {
        Protocol {
            runs: 1,
            initial_samples: 8,
            max_sims_bo: 12,
            max_sims_gaspad: 14,
            max_sims_de: 40,
            ensemble_members: 2,
            epochs: 30,
            candidate_pool: 64,
            seed: 1,
        }
    }

    #[test]
    fn every_algorithm_runs_on_the_opamp_problem() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let protocol = tiny_protocol();
        let problem = OpAmpProblem::new();
        for algorithm in Algorithm::all() {
            let result = run_algorithm(algorithm, &problem, &protocol, 0).expect("algorithm runs");
            assert!(result.num_evaluations() >= protocol.initial_samples);
        }
    }

    #[test]
    fn table_formatting_contains_all_algorithms() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let rows = vec![Table1Row {
            algorithm: "Ours".into(),
            ugf_mhz: 40.0,
            pm_deg: 61.0,
            mean_gain: 88.0,
            median_gain: 88.2,
            best_gain: 89.9,
            worst_gain: 86.0,
            avg_sims: 86.0,
            success: "10/10".into(),
        }];
        let text = format_table1(&rows);
        assert!(text.contains("Ours"));
        assert!(text.contains("10/10"));
        let rows2 = vec![Table2Row {
            algorithm: "WEIBO".into(),
            diff1: 6.58,
            diff2: 5.30,
            diff3: 0.24,
            diff4: 0.37,
            deviation: 0.41,
            mean_fom: 3.95,
            median_fom: 3.97,
            best_fom: 3.48,
            worst_fom: 4.48,
            avg_sims: 790.0,
            success: "12/12".into(),
        }];
        assert!(format_table2(&rows2).contains("WEIBO"));
    }

    #[test]
    fn table_json_is_structurally_valid_and_encodes_nan_as_null() {
        let rows = vec![Table1Row {
            algorithm: "DE".into(),
            ugf_mhz: f64::NAN,
            pm_deg: 61.0,
            mean_gain: 88.0,
            median_gain: 88.2,
            best_gain: 89.9,
            worst_gain: 86.0,
            avg_sims: 86.0,
            success: "0/10".into(),
        }];
        let json = format_table1_json(&rows, true);
        assert!(json.contains("\"schema\": \"nnbo-bench-table1-v1\""));
        assert!(json.contains("\"ugf_mhz\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let rows2 = vec![Table2Row {
            algorithm: "Ours".into(),
            diff1: 1.0,
            diff2: 2.0,
            diff3: 3.0,
            diff4: 4.0,
            deviation: 0.5,
            mean_fom: 3.95,
            median_fom: 3.97,
            best_fom: 3.48,
            worst_fom: 4.48,
            avg_sims: 100.0,
            success: "10/10".into(),
        }];
        let highdim = vec![HighDimRow {
            algorithm: "LinEasyBO".into(),
            dim: 20,
            scored_per_iteration: 96,
            mean_fom: 0.2,
            median_fom: 0.2,
            best_fom: 0.1,
            worst_fom: 0.4,
            avg_sims: 80.0,
            success: "2/2".into(),
        }];
        let json2 = format_table2_json(&rows2, &highdim, false);
        assert!(json2.contains("\"schema\": \"nnbo-bench-table2-v2\""));
        assert!(json2.contains("\"quick\": false"));
        assert!(json2.contains("\"highdim\": ["));
        assert!(json2.contains("\"scored_per_iteration\": 96"));
        assert_eq!(json2.matches('{').count(), json2.matches('}').count());
        assert_eq!(json2.matches('[').count(), json2.matches(']').count());
    }

    /// The structural claim behind the high-dimensional section: under the
    /// same protocol, LinEasyBO scores a small constant number of candidates
    /// per iteration while the pool search scores the whole pool.
    #[test]
    fn line_subspace_scores_at_least_five_times_fewer_candidates_per_iteration() {
        let line = scored_per_iteration(Algorithm::LinEasyBo, &Protocol::table2_paper());
        assert_eq!(line, LineSubspaceConfig::default().points_per_iteration());
        for protocol in [Protocol::table1_paper(), Protocol::table2_paper()] {
            let pool = scored_per_iteration(Algorithm::Weibo, &protocol);
            assert!(
                pool >= 5 * line,
                "pool search scores {pool}/iter, line search {line}/iter"
            );
        }
        // Even the CI-scale pool is never cheaper than the constant line budget.
        let quick_pool = scored_per_iteration(Algorithm::Weibo, &Protocol::table2_quick());
        assert!(quick_pool > line);
    }

    #[test]
    fn highdim_study_runs_both_strategies_on_the_weighted_sphere() {
        let _guard = crate::TEST_DISPATCH_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let rows = run_table2_highdim(&tiny_protocol()).expect("highdim study runs");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].algorithm, "WEIBO");
        assert_eq!(rows[1].algorithm, "LinEasyBO");
        for r in &rows {
            assert_eq!(r.dim, HIGHDIM_DIM);
            assert!(r.scored_per_iteration > 0);
        }
        assert!(format_table2_highdim(&rows).contains("LinEasyBO"));
    }
}
