//! Integration tests: train small MLPs end-to-end on regression tasks.

use nnbo_linalg::Matrix;
use nnbo_nn::{Activation, Adam, Mlp, MlpConfig, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trains `mlp` to minimise mean-squared error on `(x, y)` and returns the final MSE.
fn train_mse(mlp: &mut Mlp, x: &Matrix, y: &Matrix, epochs: usize, lr: f64) -> f64 {
    let mut adam = Adam::with_learning_rate(lr);
    let n = x.nrows() as f64;
    let mut last = f64::INFINITY;
    for _ in 0..epochs {
        let cache = mlp.forward_cached(x);
        let diff = cache.output() - y;
        last = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
        let grad_out = diff.map(|d| 2.0 * d / n);
        let (grad, _) = mlp.backward(&cache, &grad_out);
        let mut params = mlp.flat_params();
        adam.step(&mut params, &grad.to_flat());
        mlp.set_flat_params(&params);
    }
    last
}

#[test]
fn mlp_learns_a_linear_function() {
    let mut rng = StdRng::seed_from_u64(11);
    let config = MlpConfig::new(2, &[16], 1).with_hidden_activation(Activation::Tanh);
    let mut mlp = Mlp::new(&config, &mut rng);

    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for _ in 0..64 {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        rows.push(vec![a, b]);
        targets.push(vec![2.0 * a - 0.5 * b + 0.3]);
    }
    let x = Matrix::from_rows(&rows);
    let y = Matrix::from_rows(&targets);

    let mse = train_mse(&mut mlp, &x, &y, 1500, 0.01);
    assert!(mse < 1e-3, "final MSE too high: {mse}");
}

#[test]
fn mlp_learns_a_nonlinear_function() {
    let mut rng = StdRng::seed_from_u64(12);
    let config = MlpConfig::new(1, &[32, 32], 1);
    let mut mlp = Mlp::new(&config, &mut rng);

    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for i in 0..80 {
        let t = -1.0 + 2.0 * (i as f64) / 79.0;
        rows.push(vec![t]);
        targets.push(vec![(3.0 * t).sin()]);
    }
    let x = Matrix::from_rows(&rows);
    let y = Matrix::from_rows(&targets);

    let mse = train_mse(&mut mlp, &x, &y, 3000, 0.01);
    assert!(mse < 5e-3, "final MSE too high: {mse}");
}

#[test]
fn training_is_deterministic_for_fixed_seed() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(21);
        let config = MlpConfig::new(2, &[8], 2);
        let mut mlp = Mlp::new(&config, &mut rng);
        let x = Matrix::from_rows(&[vec![0.1, 0.9], vec![-0.4, 0.2], vec![0.7, -0.8]]);
        let y = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]]);
        train_mse(&mut mlp, &x, &y, 200, 0.01);
        mlp.flat_params()
    };
    assert_eq!(build(), build());
}

#[test]
fn different_seeds_give_different_networks() {
    let config = MlpConfig::new(3, &[8, 8], 4);
    let mut rng1 = StdRng::seed_from_u64(1);
    let mut rng2 = StdRng::seed_from_u64(2);
    let a = Mlp::new(&config, &mut rng1);
    let b = Mlp::new(&config, &mut rng2);
    assert_ne!(a.flat_params(), b.flat_params());
}
