//! Feed-forward neural-network substrate for the `nnbo` workspace.
//!
//! The paper's surrogate model replaces the explicit Gaussian-process kernel by a
//! learned feature map: a fully-connected network with two hidden layers and ReLU
//! activations (Fig. 1) whose output features `φ(x)` define the kernel
//! `k(x1,x2) = φ(x1)ᵀ Σp φ(x2)`.  This crate provides exactly the pieces that the
//! neural GP needs:
//!
//! * [`Mlp`] — a multi-layer perceptron with batched forward pass and full
//!   back-propagation through cached activations;
//! * [`Activation`] — ReLU / Tanh / Identity activations;
//! * [`Adam`] and [`Sgd`] — first-order optimizers operating on flat parameter
//!   vectors so that network weights and GP hyper-parameters can be optimized
//!   jointly;
//! * gradient checking helpers used by the test-suite.
//!
//! # Example
//!
//! ```
//! use nnbo_nn::{Activation, Mlp, MlpConfig};
//! use rand::SeedableRng;
//!
//! let config = MlpConfig::new(2, &[16, 16], 8)
//!     .with_hidden_activation(Activation::ReLU);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mlp = Mlp::new(&config, &mut rng);
//! let features = mlp.forward(&[0.3, -0.7]);
//! assert_eq!(features.len(), 8);
//! ```

#![warn(missing_docs)]

mod activation;
mod gradcheck;
mod layer;
mod mlp;
mod optimizer;

pub use activation::Activation;
pub use gradcheck::finite_difference_gradient;
pub use layer::{DenseLayer, LayerGradient};
pub use mlp::{ForwardCache, Mlp, MlpConfig, MlpGradient};
pub use optimizer::{Adam, AdamConfig, GradientDescentConfig, Optimizer, Sgd};
