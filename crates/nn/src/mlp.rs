//! Multi-layer perceptron built from [`DenseLayer`]s.

use nnbo_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, DenseLayer, LayerGradient};

/// Configuration of an [`Mlp`]: input dimension, hidden widths and output width.
///
/// The paper's feature network (Fig. 1) is "4 fully-connected layers including an
/// input layer, 2 hidden layers and an output layer" with ReLU activations; that
/// corresponds to `MlpConfig::new(d, &[h, h], m)` with the default activations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    input_dim: usize,
    hidden_dims: Vec<usize>,
    output_dim: usize,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl MlpConfig {
    /// Creates a configuration with the given layer sizes, ReLU hidden activations
    /// and a linear output layer.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `output_dim` is zero, or any hidden width is zero.
    pub fn new(input_dim: usize, hidden_dims: &[usize], output_dim: usize) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(output_dim > 0, "output dimension must be positive");
        assert!(
            hidden_dims.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        MlpConfig {
            input_dim,
            hidden_dims: hidden_dims.to_vec(),
            output_dim,
            hidden_activation: Activation::ReLU,
            output_activation: Activation::Identity,
        }
    }

    /// Sets the hidden-layer activation.
    pub fn with_hidden_activation(mut self, activation: Activation) -> Self {
        self.hidden_activation = activation;
        self
    }

    /// Sets the output-layer activation.
    pub fn with_output_activation(mut self, activation: Activation) -> Self {
        self.output_activation = activation;
        self
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden layer widths.
    pub fn hidden_dims(&self) -> &[usize] {
        &self.hidden_dims
    }

    /// Output (feature) dimension.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }
}

/// Cached intermediate values from a forward pass, needed for back-propagation.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Layer inputs: `inputs[0]` is the network input, `inputs[l]` the input to layer `l`.
    inputs: Vec<Matrix>,
    /// Pre-activations of each layer.
    pre_activations: Vec<Matrix>,
    /// Final output of the network.
    output: Matrix,
}

impl ForwardCache {
    /// The network output for the batch (shape `N x output_dim`).
    pub fn output(&self) -> &Matrix {
        &self.output
    }
}

/// Gradient of a scalar loss with respect to all [`Mlp`] parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGradient {
    layers: Vec<LayerGradient>,
}

impl MlpGradient {
    /// Flattens the gradient in the same ordering as [`Mlp::flat_params`].
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.append_flat(&mut out);
        out
    }

    /// Appends the flattened gradient (same ordering as [`Mlp::flat_params`])
    /// to `out` without allocating a fresh vector — training loops that reuse
    /// one gradient buffer across epochs clear and refill it through this.
    pub fn append_flat(&self, out: &mut Vec<f64>) {
        for l in &self.layers {
            l.append_flat(out);
        }
    }

    /// Per-layer gradients.
    pub fn layers(&self) -> &[LayerGradient] {
        &self.layers
    }
}

/// A multi-layer perceptron.
///
/// In this workspace the MLP is used as a *feature map* `φ: R^d → R^M`: the output
/// of the network is not a prediction by itself but the feature vector that defines
/// the Gaussian-process kernel of the paper's surrogate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates a network with freshly initialised weights.
    pub fn new<R: Rng + ?Sized>(config: &MlpConfig, rng: &mut R) -> Self {
        let mut layers = Vec::new();
        let mut prev = config.input_dim;
        for &h in &config.hidden_dims {
            layers.push(DenseLayer::new(prev, h, config.hidden_activation, rng));
            prev = h;
        }
        layers.push(DenseLayer::new(
            prev,
            config.output_dim,
            config.output_activation,
            rng,
        ));
        Mlp {
            config: config.clone(),
            layers,
        }
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// The layers of the network, input to output.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.config.input_dim
    }

    /// Output (feature) dimension.
    pub fn output_dim(&self) -> usize {
        self.config.output_dim
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_params).sum()
    }

    /// All parameters flattened into one vector (layer by layer, weights then bias).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            l.append_params(&mut out);
        }
        out
    }

    /// Loads parameters from a flat vector produced by [`Self::flat_params`].
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != num_params()`.
    pub fn set_flat_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.num_params(), "parameter count mismatch");
        let mut offset = 0;
        for l in &mut self.layers {
            offset += l.load_params(&flat[offset..]);
        }
    }

    /// Forward pass for a single input point, returning the feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let out = self.forward_batch(&Matrix::from_rows(&[x.to_vec()]));
        out.row(0).to_vec()
    }

    /// Batched forward pass: `X` is `N x input_dim`, the result is `N x output_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `x.ncols() != input_dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.input_dim(), "input dimension mismatch");
        let mut cur = x.clone();
        for l in &self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Forward pass that caches everything back-propagation needs.
    ///
    /// # Panics
    ///
    /// Panics if `x.ncols() != input_dim()`.
    pub fn forward_cached(&self, x: &Matrix) -> ForwardCache {
        assert_eq!(x.ncols(), self.input_dim(), "input dimension mismatch");
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for l in &self.layers {
            inputs.push(cur.clone());
            let z = l.pre_activation(&cur);
            let act = l.activation();
            cur = z.map(|v| act.apply(v));
            pre_activations.push(z);
        }
        ForwardCache {
            inputs,
            pre_activations,
            output: cur,
        }
    }

    /// Back-propagates `grad_output` (∂loss/∂output, shape `N x output_dim`) through
    /// the network, returning the parameter gradient and ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match this network's layer count or the gradient
    /// shape does not match the cached output.
    pub fn backward(&self, cache: &ForwardCache, grad_output: &Matrix) -> (MlpGradient, Matrix) {
        assert_eq!(
            cache.inputs.len(),
            self.layers.len(),
            "forward cache does not match network depth"
        );
        assert_eq!(
            grad_output.shape(),
            cache.output.shape(),
            "gradient shape does not match cached output"
        );
        let mut grads: Vec<LayerGradient> = Vec::with_capacity(self.layers.len());
        let mut grad = grad_output.clone();
        let mut per_layer: Vec<LayerGradient> = Vec::with_capacity(self.layers.len());
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let (g, grad_in) =
                layer.backward(&cache.inputs[idx], &cache.pre_activations[idx], &grad);
            per_layer.push(g);
            grad = grad_in;
        }
        per_layer.reverse();
        grads.extend(per_layer);
        (MlpGradient { layers: grads }, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_mlp(seed: u64) -> Mlp {
        let config = MlpConfig::new(3, &[5, 4], 2).with_hidden_activation(Activation::Tanh);
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&config, &mut rng)
    }

    #[test]
    fn shapes_are_consistent() {
        let mlp = small_mlp(1);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        let y = mlp.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(y.len(), 2);
        let batch = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![1.0, -1.0, 0.5]]);
        assert_eq!(mlp.forward_batch(&batch).shape(), (2, 2));
    }

    #[test]
    fn single_and_batch_forward_agree() {
        let mlp = small_mlp(2);
        let x = vec![0.4, -0.9, 1.3];
        let single = mlp.forward(&x);
        let batch = mlp.forward_batch(&Matrix::from_rows(std::slice::from_ref(&x)));
        for j in 0..2 {
            assert!((single[j] - batch[(0, j)]).abs() < 1e-14);
        }
    }

    #[test]
    fn flat_params_roundtrip() {
        let mlp = small_mlp(3);
        let flat = mlp.flat_params();
        assert_eq!(flat.len(), mlp.num_params());
        let mut copy = small_mlp(99);
        assert_ne!(copy.flat_params(), flat);
        copy.set_flat_params(&flat);
        assert_eq!(copy.flat_params(), flat);
        let x = [0.3, 0.1, -0.2];
        assert_eq!(copy.forward(&x), mlp.forward(&x));
    }

    #[test]
    fn gradient_append_flat_reuses_the_buffer() {
        let mlp = small_mlp(8);
        let x = Matrix::from_rows(&[vec![0.2, -0.5, 0.8]]);
        let cache = mlp.forward_cached(&x);
        let grad_out = Matrix::filled(1, 2, 1.0);
        let (grad, _) = mlp.backward(&cache, &grad_out);
        let mut buf = vec![42.0; 3];
        buf.clear();
        grad.append_flat(&mut buf);
        assert_eq!(buf, grad.to_flat());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mlp = small_mlp(4);
        let x = Matrix::from_rows(&[vec![0.2, -0.5, 0.8], vec![-0.3, 0.6, 0.1]]);
        // Scalar loss: sum of squares of the outputs.
        let loss = |m: &Mlp| {
            let out = m.forward_batch(&x);
            out.as_slice().iter().map(|v| v * v).sum::<f64>()
        };
        let cache = mlp.forward_cached(&x);
        let grad_out = cache.output().map(|v| 2.0 * v);
        let (grad, _) = mlp.backward(&cache, &grad_out);
        let analytic = grad.to_flat();

        let base = mlp.flat_params();
        let h = 1e-6;
        let mut max_err = 0.0_f64;
        for k in 0..base.len() {
            let mut plus = base.clone();
            plus[k] += h;
            let mut minus = base.clone();
            minus[k] -= h;
            let mut mp = mlp.clone();
            mp.set_flat_params(&plus);
            let mut mm = mlp.clone();
            mm.set_flat_params(&minus);
            let fd = (loss(&mp) - loss(&mm)) / (2.0 * h);
            max_err = max_err.max((fd - analytic[k]).abs());
        }
        assert!(max_err < 1e-4, "max gradient error {max_err}");
    }

    #[test]
    fn backward_input_gradient_matches_finite_differences() {
        let mlp = small_mlp(5);
        let x = Matrix::from_rows(&[vec![0.7, -0.1, 0.4]]);
        let cache = mlp.forward_cached(&x);
        let grad_out = Matrix::filled(1, 2, 1.0);
        let (_, grad_in) = mlp.backward(&cache, &grad_out);
        let h = 1e-6;
        for j in 0..3 {
            let mut xp = x.clone();
            xp[(0, j)] += h;
            let mut xm = x.clone();
            xm[(0, j)] -= h;
            let fd = (mlp.forward_batch(&xp).sum() - mlp.forward_batch(&xm).sum()) / (2.0 * h);
            assert!((fd - grad_in[(0, j)]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dimension_panics() {
        let mlp = small_mlp(6);
        let _ = mlp.forward(&[1.0, 2.0]);
    }

    #[test]
    fn relu_network_is_piecewise_linear_in_scale() {
        // Scaling a positive-activation input by a positive factor scales a bias-free
        // ReLU network's output by the same factor (positive homogeneity).
        let config = MlpConfig::new(2, &[8], 3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&config, &mut rng);
        // Zero the biases so homogeneity holds exactly.
        let mut flat = mlp.flat_params();
        // Layer 0: 2*8 weights then 8 biases; layer 1: 8*3 weights then 3 biases.
        for b in flat.iter_mut().skip(16).take(8) {
            *b = 0.0;
        }
        let len = flat.len();
        for b in flat.iter_mut().skip(len - 3) {
            *b = 0.0;
        }
        mlp.set_flat_params(&flat);
        let x = [0.3, 0.9];
        let y1 = mlp.forward(&x);
        let y2 = mlp.forward(&[x[0] * 2.0, x[1] * 2.0]);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((2.0 * a - b).abs() < 1e-10);
        }
    }
}
