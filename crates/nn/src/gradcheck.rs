//! Finite-difference gradient checking.
//!
//! Used throughout the workspace's test-suites to validate the analytic gradients of
//! the neural network, the GP marginal likelihood and the neural-GP loss (eq. 12 of
//! the paper) against central differences.

/// Computes the central finite-difference gradient of `f` at `params`.
///
/// `step` is the perturbation size; `1e-6` is a good default for well-scaled
/// problems.
///
/// # Example
///
/// ```
/// use nnbo_nn::finite_difference_gradient;
///
/// let f = |p: &[f64]| p[0] * p[0] + 3.0 * p[1];
/// let g = finite_difference_gradient(&f, &[2.0, 5.0], 1e-6);
/// assert!((g[0] - 4.0).abs() < 1e-4);
/// assert!((g[1] - 3.0).abs() < 1e-4);
/// ```
pub fn finite_difference_gradient<F>(f: &F, params: &[f64], step: f64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut grad = vec![0.0; params.len()];
    let mut work = params.to_vec();
    for i in 0..params.len() {
        let orig = work[i];
        work[i] = orig + step;
        let fp = f(&work);
        work[i] = orig - step;
        let fm = f(&work);
        work[i] = orig;
        grad[i] = (fp - fm) / (2.0 * step);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_analytic_gradient_of_polynomial() {
        let f = |p: &[f64]| p[0].powi(3) + 2.0 * p[0] * p[1] + p[1].powi(2);
        let p = [1.5, -0.5];
        let g = finite_difference_gradient(&f, &p, 1e-6);
        let expected = [3.0 * p[0] * p[0] + 2.0 * p[1], 2.0 * p[0] + 2.0 * p[1]];
        assert!((g[0] - expected[0]).abs() < 1e-5);
        assert!((g[1] - expected[1]).abs() < 1e-5);
    }

    #[test]
    fn zero_gradient_at_minimum() {
        let f = |p: &[f64]| (p[0] - 2.0).powi(2);
        let g = finite_difference_gradient(&f, &[2.0], 1e-6);
        assert!(g[0].abs() < 1e-6);
    }
}
