//! First-order optimizers on flat parameter vectors.
//!
//! The neural GP of the paper trains the network weights *and* the GP
//! hyper-parameters `σn`, `σp` jointly by minimising the negative log marginal
//! likelihood (eq. 11).  Representing the full parameter set as one flat `Vec<f64>`
//! lets a single optimizer state drive all of them.

use serde::{Deserialize, Serialize};

/// A first-order optimizer that updates a flat parameter vector in place given the
/// gradient of a scalar loss.
pub trait Optimizer {
    /// Performs one update step.  `params` and `grad` must have the same length on
    /// every call, and that length must not change across calls.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);

    /// Resets any internal state (moment estimates, step counters).
    fn reset(&mut self);
}

/// Configuration for the [`Adam`] optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (default `1e-2`).
    pub learning_rate: f64,
    /// Exponential decay rate for the first moment (default `0.9`).
    pub beta1: f64,
    /// Exponential decay rate for the second moment (default `0.999`).
    pub beta2: f64,
    /// Numerical stabiliser added to the denominator (default `1e-8`).
    pub epsilon: f64,
    /// Maximum allowed gradient L2 norm; gradients are rescaled above it
    /// (default `1e3`, which effectively disables clipping for well-scaled losses).
    pub grad_clip: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            grad_clip: 1e3,
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with optional gradient-norm clipping.
///
/// # Example
///
/// ```
/// use nnbo_nn::{Adam, AdamConfig, Optimizer};
///
/// // Minimise f(x) = (x - 3)².
/// let mut adam = Adam::new(AdamConfig { learning_rate: 0.1, ..AdamConfig::default() });
/// let mut params = vec![0.0];
/// for _ in 0..500 {
///     let grad = vec![2.0 * (params[0] - 3.0)];
///     adam.step(&mut params, &grad);
/// }
/// assert!((params[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Creates an Adam optimizer with default hyper-parameters and the given
    /// learning rate.
    pub fn with_learning_rate(learning_rate: f64) -> Self {
        Adam::new(AdamConfig {
            learning_rate,
            ..AdamConfig::default()
        })
    }

    /// The configuration of this optimizer.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new(AdamConfig::default())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let AdamConfig {
            learning_rate,
            beta1,
            beta2,
            epsilon,
            grad_clip,
        } = self.config;

        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        let scale = if norm > grad_clip && norm > 0.0 {
            grad_clip / norm
        } else {
            1.0
        };

        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i] * scale;
            if !g.is_finite() {
                // A non-finite component would poison the moment estimates forever;
                // skip it and let the next evaluation recover.
                continue;
            }
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

/// Configuration for plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientDescentConfig {
    /// Learning rate (default `1e-3`).
    pub learning_rate: f64,
    /// Classical momentum coefficient (default `0.0`, i.e. no momentum).
    pub momentum: f64,
}

impl Default for GradientDescentConfig {
    fn default() -> Self {
        GradientDescentConfig {
            learning_rate: 1e-3,
            momentum: 0.0,
        }
    }
}

/// Gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    config: GradientDescentConfig,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given configuration.
    pub fn new(config: GradientDescentConfig) -> Self {
        Sgd {
            config,
            velocity: Vec::new(),
        }
    }

    /// Creates an SGD optimizer with the given learning rate and no momentum.
    pub fn with_learning_rate(learning_rate: f64) -> Self {
        Sgd::new(GradientDescentConfig {
            learning_rate,
            momentum: 0.0,
        })
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::new(GradientDescentConfig::default())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            if !grad[i].is_finite() {
                continue;
            }
            self.velocity[i] =
                self.config.momentum * self.velocity[i] - self.config.learning_rate * grad[i];
            params[i] += self.velocity[i];
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rosenbrock function and gradient, a classic non-convex optimizer test.
    fn rosenbrock(p: &[f64]) -> (f64, Vec<f64>) {
        let (x, y) = (p[0], p[1]);
        let f = (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
        let gy = 200.0 * (y - x * x);
        (f, vec![gx, gy])
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut adam = Adam::with_learning_rate(0.05);
        let mut p = vec![5.0, -4.0, 2.0];
        for _ in 0..2000 {
            let grad: Vec<f64> = p.iter().map(|x| 2.0 * x).collect();
            adam.step(&mut p, &grad);
        }
        for x in &p {
            assert!(x.abs() < 1e-3, "param {x} did not converge");
        }
    }

    #[test]
    fn adam_makes_progress_on_rosenbrock() {
        let mut adam = Adam::with_learning_rate(0.02);
        let mut p = vec![-1.0, 1.0];
        let (f0, _) = rosenbrock(&p);
        for _ in 0..5000 {
            let (_, g) = rosenbrock(&p);
            adam.step(&mut p, &g);
        }
        let (f1, _) = rosenbrock(&p);
        assert!(f1 < f0 * 1e-3, "insufficient progress: {f0} -> {f1}");
    }

    #[test]
    fn sgd_with_momentum_minimises_quadratic() {
        let mut sgd = Sgd::new(GradientDescentConfig {
            learning_rate: 0.05,
            momentum: 0.5,
        });
        let mut p = vec![3.0];
        for _ in 0..500 {
            let grad = vec![2.0 * p[0]];
            sgd.step(&mut p, &grad);
        }
        assert!(p[0].abs() < 1e-4);
    }

    #[test]
    fn gradient_clipping_limits_update_size() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.1,
            grad_clip: 1.0,
            ..AdamConfig::default()
        });
        let mut p = vec![0.0, 0.0];
        adam.step(&mut p, &[1e9, 1e9]);
        // Even with a huge gradient the first Adam step is bounded by the LR.
        for x in &p {
            assert!(x.abs() <= 0.1 + 1e-12);
        }
    }

    #[test]
    fn non_finite_gradients_are_ignored() {
        let mut adam = Adam::with_learning_rate(0.1);
        let mut p = vec![1.0, 1.0];
        adam.step(&mut p, &[f64::NAN, 0.5]);
        assert!(p[0].is_finite());
        assert!(
            (p[0] - 1.0).abs() < 1e-12,
            "NaN gradient must not move the parameter"
        );
        assert!(p[1] < 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::with_learning_rate(0.1);
        let mut p = vec![1.0];
        adam.step(&mut p, &[1.0]);
        adam.reset();
        let mut q = vec![1.0];
        adam.step(&mut q, &[1.0]);
        // After a reset the first step from the same state must be identical.
        let mut adam2 = Adam::with_learning_rate(0.1);
        let mut r = vec![1.0];
        adam2.step(&mut r, &[1.0]);
        assert_eq!(q, r);
    }
}
