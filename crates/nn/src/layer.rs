//! A single fully-connected layer.

use nnbo_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Activation;

/// A dense (fully-connected) layer `y = act(W x + b)`.
///
/// Weights are stored as an `out x in` matrix so a batched forward pass over an
/// `N x in` input matrix is `X Wᵀ + b` (row-wise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

/// Gradient of a loss with respect to one [`DenseLayer`]'s parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradient {
    /// Gradient with respect to the weight matrix (same shape as the weights).
    pub weights: Matrix,
    /// Gradient with respect to the bias vector.
    pub bias: Vec<f64>,
}

impl DenseLayer {
    /// Creates a layer with He-style initialisation for ReLU layers and
    /// Xavier-style initialisation otherwise.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let scale = match activation {
            Activation::ReLU => (2.0 / input_dim as f64).sqrt(),
            _ => (1.0 / input_dim as f64).sqrt(),
        };
        let mut weights = Matrix::zeros(output_dim, input_dim);
        for v in weights.as_mut_slice() {
            // Uniform in [-sqrt(3), sqrt(3)] * scale has the desired variance scale².
            *v = rng.gen_range(-1.0..1.0) * 3.0_f64.sqrt() * scale;
        }
        let bias = vec![0.0; output_dim];
        DenseLayer {
            weights,
            bias,
            activation,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.ncols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.nrows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Borrow of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrow of the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Number of scalar parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weights.nrows() * self.weights.ncols() + self.bias.len()
    }

    /// Appends the layer parameters to a flat vector (weights row-major, then bias).
    pub fn append_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.bias);
    }

    /// Reads the layer parameters back from a flat slice, returning how many values
    /// were consumed.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than [`Self::num_params`].
    pub fn load_params(&mut self, flat: &[f64]) -> usize {
        let nw = self.weights.nrows() * self.weights.ncols();
        assert!(
            flat.len() >= nw + self.bias.len(),
            "parameter slice too short"
        );
        let nb = self.bias.len();
        self.weights.as_mut_slice().copy_from_slice(&flat[..nw]);
        self.bias.copy_from_slice(&flat[nw..nw + nb]);
        nw + nb
    }

    /// Batched pre-activation: `Z = X Wᵀ + b` where `X` is `N x in`.
    pub fn pre_activation(&self, input: &Matrix) -> Matrix {
        let mut z = input.matmul_transpose(&self.weights);
        for i in 0..z.nrows() {
            let row = z.row_mut(i);
            for (zj, bj) in row.iter_mut().zip(self.bias.iter()) {
                *zj += bj;
            }
        }
        z
    }

    /// Batched forward pass: activation applied to the pre-activation.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let act = self.activation;
        self.pre_activation(input).map(|x| act.apply(x))
    }

    /// Back-propagates `grad_output` (gradient of the loss with respect to this
    /// layer's *post-activation* output, shape `N x out`).
    ///
    /// Returns the parameter gradient and the gradient with respect to the layer
    /// input (shape `N x in`), given the cached `input` and `pre_activation` from the
    /// forward pass.
    pub fn backward(
        &self,
        input: &Matrix,
        pre_activation: &Matrix,
        grad_output: &Matrix,
    ) -> (LayerGradient, Matrix) {
        let act = self.activation;
        // delta = grad_output ⊙ act'(z), shape N x out.
        let delta = grad_output.hadamard(&pre_activation.map(|x| act.derivative(x)));
        // dW = deltaᵀ X  (out x in);  db = column sums of delta.
        let grad_weights = delta.transpose_matmul(input);
        let mut grad_bias = vec![0.0; self.output_dim()];
        for i in 0..delta.nrows() {
            for (gb, d) in grad_bias.iter_mut().zip(delta.row(i).iter()) {
                *gb += d;
            }
        }
        // grad_input = delta W, shape N x in.
        let grad_input = delta.matmul(&self.weights);
        (
            LayerGradient {
                weights: grad_weights,
                bias: grad_bias,
            },
            grad_input,
        )
    }
}

impl LayerGradient {
    /// A zero gradient with the same shape as `layer`.
    pub fn zeros_like(layer: &DenseLayer) -> Self {
        LayerGradient {
            weights: Matrix::zeros(layer.output_dim(), layer.input_dim()),
            bias: vec![0.0; layer.output_dim()],
        }
    }

    /// Appends the gradient values to a flat vector (same ordering as
    /// [`DenseLayer::append_params`]).
    pub fn append_flat(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = DenseLayer::new(3, 2, Activation::Identity, &mut rng);
        // Overwrite with known parameters.
        let flat = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.5, -0.5];
        layer.load_params(&flat);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (1, 2));
        assert!((y[(0, 0)] - 1.5).abs() < 1e-12);
        assert!((y[(0, 1)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = DenseLayer::new(4, 3, Activation::ReLU, &mut rng);
        let mut flat = Vec::new();
        layer.append_params(&mut flat);
        assert_eq!(flat.len(), layer.num_params());
        let mut copy = layer.clone();
        let consumed = copy.load_params(&flat);
        assert_eq!(consumed, layer.num_params());
        assert_eq!(copy, layer);
    }

    #[test]
    fn relu_layer_zeroes_negative_preactivations() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DenseLayer::new(1, 1, Activation::ReLU, &mut rng);
        layer.load_params(&[-1.0, 0.0]);
        let y = layer.forward(&Matrix::from_rows(&[vec![2.0]]));
        assert_eq!(y[(0, 0)], 0.0);
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = DenseLayer::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[vec![0.3, -0.4, 0.9], vec![1.1, 0.2, -0.6]]);
        // Loss = sum of outputs, so grad_output is all ones.
        let loss = |l: &DenseLayer| l.forward(&x).sum();
        let grad_out = Matrix::filled(2, 2, 1.0);
        let z = layer.pre_activation(&x);
        let (grad, _) = layer.backward(&x, &z, &grad_out);

        let mut flat = Vec::new();
        layer.append_params(&mut flat);
        let mut grad_flat = Vec::new();
        grad.append_flat(&mut grad_flat);

        let h = 1e-6;
        for k in 0..flat.len() {
            let mut plus = flat.clone();
            plus[k] += h;
            let mut minus = flat.clone();
            minus[k] -= h;
            let mut lp = layer.clone();
            lp.load_params(&plus);
            let mut lm = layer.clone();
            lm.load_params(&minus);
            let fd = (loss(&lp) - loss(&lm)) / (2.0 * h);
            assert!(
                (fd - grad_flat[k]).abs() < 1e-5,
                "param {k}: fd {fd} vs analytic {}",
                grad_flat[k]
            );
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = DenseLayer::new(2, 3, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[vec![0.5, -0.2]]);
        let grad_out = Matrix::filled(1, 3, 1.0);
        let z = layer.pre_activation(&x);
        let (_, grad_in) = layer.backward(&x, &z, &grad_out);
        let h = 1e-6;
        for j in 0..2 {
            let mut xp = x.clone();
            xp[(0, j)] += h;
            let mut xm = x.clone();
            xm[(0, j)] -= h;
            let fd = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * h);
            assert!((fd - grad_in[(0, j)]).abs() < 1e-5);
        }
    }
}
