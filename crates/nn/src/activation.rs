//! Elementwise activation functions.

use serde::{Deserialize, Serialize};

/// Elementwise activation function used by [`crate::DenseLayer`].
///
/// The paper's feature network uses ReLU in the hidden layers (Fig. 1); the output
/// layer is linear (identity) so that the features can take arbitrary sign, and Tanh
/// is provided for experimentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    #[default]
    ReLU,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear) activation.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation evaluated at pre-activation `x`.
    ///
    /// For ReLU the sub-gradient at exactly zero is taken to be 0.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values_and_derivative() {
        assert_eq!(Activation::ReLU.apply(-2.0), 0.0);
        assert_eq!(Activation::ReLU.apply(3.0), 3.0);
        assert_eq!(Activation::ReLU.derivative(-1.0), 0.0);
        assert_eq!(Activation::ReLU.derivative(1.0), 1.0);
    }

    #[test]
    fn tanh_matches_std() {
        let x = 0.7;
        assert!((Activation::Tanh.apply(x) - x.tanh()).abs() < 1e-15);
        let d = Activation::Tanh.derivative(x);
        assert!((d - (1.0 - x.tanh() * x.tanh())).abs() < 1e-15);
    }

    #[test]
    fn identity_is_transparent() {
        assert_eq!(Activation::Identity.apply(-5.5), -5.5);
        assert_eq!(Activation::Identity.derivative(123.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::ReLU, Activation::Tanh, Activation::Identity] {
            for &x in &[-1.3, -0.2, 0.4, 2.1] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!(
                    (act.derivative(x) - fd).abs() < 1e-5,
                    "{act:?} derivative mismatch at {x}"
                );
            }
        }
    }
}
