//! # `nnbo-pool` — the workspace's one parallelism mechanism
//!
//! A process-wide bounded pool of pinned worker threads, replacing the
//! per-call `std::thread::scope` spawning the numeric kernels and the
//! ensemble trainers used to do.  Everything parallel in the workspace —
//! the linalg row-band kernels, the outputs × members surrogate training
//! fan-outs, and the `nnbo-serve` session multiplexer — submits work here,
//! so the thread count is bounded once for the whole process instead of
//! per call site.
//!
//! ## Execution model
//!
//! Work enters through a shared injector deque and is executed by
//! [`WorkerPool::workers`] long-lived worker threads, in two shapes:
//!
//! * **Scoped batches** ([`WorkerPool::run_batch`]): a set of independent
//!   tasks borrowing the caller's stack frame (disjoint `&mut` bands of an
//!   output buffer, a slice of training jobs).  The call returns only after
//!   every task ran.  Tasks are claimed one at a time from the batch by
//!   whichever participant is free — the submitting thread itself works the
//!   batch alongside the pool, stealing tasks back from its own submission,
//!   so a batch always completes even when every worker is busy with other
//!   (possibly long-running) jobs and nested submissions cannot deadlock.
//!   Each task computes exactly what the sequential loop would, so results
//!   are bit-identical regardless of which thread claims which task.
//! * **Detached jobs** ([`WorkerPool::spawn`]): fire-and-forget `'static`
//!   closures (the serving layer's session steps).  Each job runs under
//!   [`std::panic::catch_unwind`], so a poisoned job never takes down its
//!   worker mid-flight.
//!
//! ## Supervision
//!
//! Workers are supervised: a worker whose job panicked (or whose job asked
//! for a clean slate via [`WorkerPool::recycle_current_worker`]) is
//! *recycled* — the thread exits and the supervisor spawns a fresh
//! replacement with a clean stack, counted in
//! [`PoolStats::worker_restarts`] — up to the configured
//! [`PoolConfig::restart_budget`].  Past the budget the worker is kept
//! alive instead of recycled (the pool never loses capacity; the budget
//! only bounds the churn) and the overflow is counted in
//! [`PoolStats::restart_budget_exhausted`].  Batch-task panics are *not* a
//! worker-health signal: the payload is captured and re-thrown on the
//! submitting thread, exactly as the old `thread::scope` join did.
//!
//! Poisoned internal locks are recovered, never propagated: a thread dying
//! while holding the injector, a batch queue, or the handle table cannot
//! cascade into panicking every later `run_batch`/`spawn` caller.  Each
//! recovery is counted in [`PoolStats::lock_poisonings`].
//!
//! ## The global pool
//!
//! [`WorkerPool::global`] is the process-wide instance every library call
//! site uses (sized `min(available_parallelism, 8)`, overridable with the
//! `NNBO_POOL_WORKERS` environment variable).  Private pools
//! ([`WorkerPool::new`]) exist for tests and for services that want their
//! own capacity accounting; dropping a private pool drains its injector
//! and joins its workers.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Upper bound on global-pool workers (beyond this the numeric kernels are
/// memory-bound; the cap matches the old per-call `thread::scope` limit).
const MAX_GLOBAL_WORKERS: usize = 8;

/// A task inside a scoped batch.  The `'static` is a lie told once, in
/// [`WorkerPool::run_batch`], and made true by the batch latch: the
/// submitting call does not return (or unwind) until every task finished,
/// so the borrows the closures capture outlive every execution.
type BatchTask = Box<dyn FnOnce() + Send + 'static>;

/// A detached job (a session step, a checkpoint flush).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One scoped batch: a bag of claimable tasks plus the completion latch the
/// submitting thread blocks on.
struct BatchCore {
    /// Unclaimed tasks; participants (workers and the submitting thread)
    /// pop from the front.
    tasks: Mutex<VecDeque<BatchTask>>,
    /// Tasks not yet *completed* (claimed-and-running tasks count).
    remaining: AtomicUsize,
    /// First panic payload raised by a task, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Latch the submitting thread waits on once it runs out of tasks.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// The owning pool's poisoned-lock counter (shared so the free
    /// functions working a batch can count recoveries too).
    poisonings: Arc<AtomicUsize>,
}

impl BatchCore {
    /// Claims and runs one task, if any remain.  Returns `false` when the
    /// batch has no unclaimed tasks left.
    fn run_one(&self) -> bool {
        let task = match recover_lock(&self.tasks, &self.poisonings).pop_front() {
            Some(t) => t,
            None => return false,
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = recover_lock(&self.panic, &self.poisonings);
            slot.get_or_insert(payload);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = recover_lock(&self.done, &self.poisonings);
            *done = true;
            self.done_cv.notify_all();
        }
        true
    }

    /// `true` once every task completed.
    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// Work item in the shared injector.
enum Work {
    /// A detached job.
    Job(Job),
    /// A handle to a scoped batch; the claiming worker takes tasks from it
    /// and re-injects the handle while tasks remain, so several workers
    /// converge on one batch.
    Batch(Arc<BatchCore>),
}

/// Counters describing what the pool has done so far — a consistent-enough
/// snapshot for tests and benchmark reports (each counter is individually
/// atomic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Detached jobs that ran to completion (panicked ones included).
    pub jobs_executed: usize,
    /// Scoped-batch tasks executed (by workers or submitting threads).
    pub batch_tasks_executed: usize,
    /// Detached jobs that panicked (caught; the worker was then recycled).
    pub job_panics: usize,
    /// Workers the supervisor recycled with a fresh thread.
    pub worker_restarts: usize,
    /// Recycle requests denied because the restart budget was spent (the
    /// worker kept running on its old thread instead).
    pub restart_budget_exhausted: usize,
    /// Poisoned internal locks recovered with `into_inner` (a panic died
    /// while holding a pool lock; the pool continued instead of cascading
    /// the panic into every later caller).
    pub lock_poisonings: usize,
}

struct Counters {
    jobs_executed: AtomicUsize,
    batch_tasks_executed: AtomicUsize,
    job_panics: AtomicUsize,
    worker_restarts: AtomicUsize,
    restart_budget_exhausted: AtomicUsize,
    /// Behind an `Arc` so each `BatchCore` can hold a handle to it.
    lock_poisonings: Arc<AtomicUsize>,
}

impl Counters {
    fn new() -> Self {
        Counters {
            jobs_executed: AtomicUsize::new(0),
            batch_tasks_executed: AtomicUsize::new(0),
            job_panics: AtomicUsize::new(0),
            worker_restarts: AtomicUsize::new(0),
            restart_budget_exhausted: AtomicUsize::new(0),
            lock_poisonings: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn snapshot(&self) -> PoolStats {
        PoolStats {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            batch_tasks_executed: self.batch_tasks_executed.load(Ordering::Relaxed),
            job_panics: self.job_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            restart_budget_exhausted: self.restart_budget_exhausted.load(Ordering::Relaxed),
            lock_poisonings: self.lock_poisonings.load(Ordering::Relaxed),
        }
    }
}

/// Locks `lock`, recovering the inner value (and counting the recovery)
/// when a previous holder panicked.  Every invariant the pool's locks guard
/// is re-established by the panicking path itself (task panics are caught
/// *outside* the lock scopes), so the poison flag carries no information —
/// propagating it would only convert one panic into a cascade across every
/// later caller.
fn recover_lock<'a, T>(lock: &'a Mutex<T>, poisonings: &AtomicUsize) -> MutexGuard<'a, T> {
    lock.lock().unwrap_or_else(|poisoned| {
        poisonings.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// [`Condvar::wait`] with the same poison recovery as [`recover_lock`].
fn recover_wait<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    poisonings: &AtomicUsize,
) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|poisoned| {
        poisonings.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// Pool construction knobs (see [`WorkerPool::with_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// How many times the supervisor may replace a crashed/recycled worker
    /// with a fresh thread over the pool's lifetime.
    pub restart_budget: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { restart_budget: 64 }
    }
}

struct PoolInner {
    injector: Mutex<VecDeque<Work>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    workers: usize,
    config: PoolConfig,
    restarts: AtomicUsize,
    counters: Counters,
    /// Join handles of the live worker threads, indexed by worker id;
    /// replaced on recycle, joined on drop.
    handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
}

thread_local! {
    /// Set while this thread is a pool worker executing a detached job, so
    /// [`WorkerPool::recycle_current_worker`] knows whether (and where) a
    /// recycle request applies.
    static RECYCLE_REQUESTED: Cell<bool> = const { Cell::new(false) };
    static ON_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// How a worker loop ended.
enum WorkerExit {
    /// Pool shutting down — exit without replacement.
    Shutdown,
    /// The worker wants a fresh thread (panicked job or explicit request).
    Recycle,
}

/// The bounded, supervised worker pool.  See the crate docs for the
/// execution and supervision model.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// Creates a private pool with `workers` pinned worker threads and the
    /// default supervision config.  `workers` may be 0: every batch then
    /// runs entirely on the submitting thread (detached jobs would never
    /// run, so [`WorkerPool::spawn`] requires at least one worker).
    pub fn new(workers: usize) -> Self {
        WorkerPool::with_config(workers, PoolConfig::default())
    }

    /// Creates a private pool with an explicit supervision config.
    pub fn with_config(workers: usize, config: PoolConfig) -> Self {
        let inner = Arc::new(PoolInner {
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
            config,
            restarts: AtomicUsize::new(0),
            counters: Counters::new(),
            handles: Mutex::new((0..workers).map(|_| None).collect()),
        });
        for id in 0..workers {
            spawn_worker(&inner, id);
        }
        WorkerPool { inner }
    }

    /// The process-wide pool: `min(available_parallelism, 8)` workers, or
    /// the `NNBO_POOL_WORKERS` environment variable when set.  Initialised
    /// on first use and never torn down.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let workers = std::env::var("NNBO_POOL_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| cores.min(MAX_GLOBAL_WORKERS));
            WorkerPool::new(workers)
        })
    }

    /// Number of pinned worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Maximum useful fan-out of a scoped batch on this pool: the workers
    /// plus the submitting thread, which participates too.
    pub fn participants(&self) -> usize {
        self.inner.workers + 1
    }

    /// Snapshot of the pool's activity counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.counters.snapshot()
    }

    /// Runs every task to completion, sharing them between the pool's
    /// workers and the calling thread.  Tasks may borrow from the caller's
    /// stack (`'env`); the call only returns once all of them finished, and
    /// the first task panic is re-thrown here.
    pub fn run_batch<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let n = tasks.len();
        // SAFETY: the 'env tasks are executed only between this point and
        // the latch wait below; `wait_batch` does not return until
        // `remaining` reaches zero (task panics are caught and still count
        // down), and no code path between submission and the wait can
        // unwind past this frame, so every borrow outlives every execution.
        let tasks: VecDeque<BatchTask> = tasks
            .into_iter()
            .map(|t| unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, BatchTask>(t)
            })
            .collect();
        let batch = Arc::new(BatchCore {
            tasks: Mutex::new(tasks),
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            poisonings: Arc::clone(&self.inner.counters.lock_poisonings),
        });
        if self.inner.workers > 0 && n > 1 {
            let mut injector = self.lock_injector();
            injector.push_back(Work::Batch(Arc::clone(&batch)));
            drop(injector);
            self.inner.work_cv.notify_all();
        }
        // The submitting thread works the batch too — claiming tasks back
        // from the pool until none remain — then waits out the stragglers.
        while batch.run_one() {
            self.inner
                .counters
                .batch_tasks_executed
                .fetch_add(1, Ordering::Relaxed);
        }
        wait_batch(&batch);
        let payload = recover_lock(&batch.panic, &batch.poisonings).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Locks the injector with poison recovery.
    fn lock_injector(&self) -> MutexGuard<'_, VecDeque<Work>> {
        recover_lock(&self.inner.injector, &self.inner.counters.lock_poisonings)
    }

    /// Submits a detached job.  The job runs on a worker under
    /// `catch_unwind`; a panicking job is counted and its worker recycled
    /// (see the crate docs).  Requires at least one worker.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        assert!(
            self.inner.workers > 0,
            "cannot spawn a detached job on a pool with zero workers"
        );
        let mut injector = self.lock_injector();
        injector.push_back(Work::Job(Box::new(job)));
        drop(injector);
        self.inner.work_cv.notify_one();
    }

    /// Asks the pool to recycle the worker executing the *current* detached
    /// job once the job returns: the thread exits and the supervisor spawns
    /// a replacement (budget permitting).  Returns `false` when the calling
    /// thread is not running a pool job (the request then has no effect).
    ///
    /// `nnbo-serve` calls this after catching a session panic, so the next
    /// session starts on a worker with a pristine stack.
    pub fn recycle_current_worker(&self) -> bool {
        if ON_POOL_JOB.with(|c| c.get()) {
            RECYCLE_REQUESTED.with(|c| c.set(true));
            true
        } else {
            false
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        let handles: Vec<_> =
            recover_lock(&self.inner.handles, &self.inner.counters.lock_poisonings)
                .iter_mut()
                .filter_map(Option::take)
                .collect();
        // The pool can be dropped *from one of its own workers* (the last
        // owner of an embedding structure may be a detached job); joining
        // the current thread would deadlock, so that handle is released
        // unjoined — the worker exits on its own once it observes shutdown.
        let me = std::thread::current().id();
        for h in handles {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

/// Blocks until every task of `batch` completed.
fn wait_batch(batch: &BatchCore) {
    if batch.is_done() {
        return;
    }
    let mut done = recover_lock(&batch.done, &batch.poisonings);
    while !*done {
        done = recover_wait(&batch.done_cv, done, &batch.poisonings);
    }
}

/// Spawns (or respawns) worker `id` and registers its join handle.
fn spawn_worker(inner: &Arc<PoolInner>, id: usize) {
    let pool = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("nnbo-pool-{id}"))
        .spawn(move || worker_main(pool, id))
        .expect("failed to spawn pool worker");
    recover_lock(&inner.handles, &inner.counters.lock_poisonings)[id] = Some(handle);
}

/// Worker thread entry: run the loop; on a recycle exit (or an unexpected
/// loop panic — a pool bug, not a job panic) hand the slot to the
/// supervisor for replacement.
fn worker_main(inner: Arc<PoolInner>, id: usize) {
    let exit = catch_unwind(AssertUnwindSafe(|| worker_loop(&inner)));
    match exit {
        Ok(WorkerExit::Shutdown) => {}
        Ok(WorkerExit::Recycle) | Err(_) => supervise_worker_down(&inner, id),
    }
}

/// The supervisor: replaces a downed worker with a fresh thread while the
/// restart budget lasts; past it, nothing is spawned (the caller that
/// triggered a deliberate recycle keeps its old thread alive instead — see
/// `worker_loop`, which consults the budget *before* exiting).
fn supervise_worker_down(inner: &Arc<PoolInner>, id: usize) {
    if inner.shutdown.load(Ordering::SeqCst) {
        return;
    }
    inner
        .counters
        .worker_restarts
        .fetch_add(1, Ordering::Relaxed);
    spawn_worker(inner, id);
}

/// Reserves one unit of restart budget; `false` when the budget is spent.
fn try_reserve_restart(inner: &PoolInner) -> bool {
    let budget = inner.config.restart_budget;
    let mut used = inner.restarts.load(Ordering::Relaxed);
    loop {
        if used >= budget {
            return false;
        }
        match inner
            .restarts
            .compare_exchange(used, used + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(now) => used = now,
        }
    }
}

fn worker_loop(inner: &Arc<PoolInner>) -> WorkerExit {
    loop {
        let work = {
            let poisonings = &inner.counters.lock_poisonings;
            let mut injector = recover_lock(&inner.injector, poisonings);
            loop {
                if let Some(work) = injector.pop_front() {
                    break work;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return WorkerExit::Shutdown;
                }
                injector = recover_wait(&inner.work_cv, injector, poisonings);
            }
        };
        match work {
            Work::Job(job) => {
                ON_POOL_JOB.with(|c| c.set(true));
                RECYCLE_REQUESTED.with(|c| c.set(false));
                let outcome = catch_unwind(AssertUnwindSafe(job));
                ON_POOL_JOB.with(|c| c.set(false));
                inner.counters.jobs_executed.fetch_add(1, Ordering::Relaxed);
                let recycle = match outcome {
                    Err(_) => {
                        inner.counters.job_panics.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                    Ok(()) => RECYCLE_REQUESTED.with(|c| c.get()),
                };
                if recycle {
                    if try_reserve_restart(inner) {
                        return WorkerExit::Recycle;
                    }
                    inner
                        .counters
                        .restart_budget_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Work::Batch(batch) => {
                if batch.run_one() {
                    inner
                        .counters
                        .batch_tasks_executed
                        .fetch_add(1, Ordering::Relaxed);
                    // More tasks may remain: re-inject the handle so other
                    // idle workers converge on this batch too, then keep
                    // draining it ourselves (cheaper than one injector trip
                    // per task).  An exhausted handle is dropped on pop —
                    // run_one returns false and nothing is re-injected — so
                    // dead handles cannot circulate.
                    if !recover_lock(&batch.tasks, &batch.poisonings).is_empty() {
                        let mut injector =
                            recover_lock(&inner.injector, &inner.counters.lock_poisonings);
                        injector.push_front(Work::Batch(Arc::clone(&batch)));
                        drop(injector);
                        inner.work_cv.notify_one();
                    }
                    while batch.run_one() {
                        inner
                            .counters
                            .batch_tasks_executed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn batch_runs_every_task_exactly_once_and_supports_borrows() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0usize; 64];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(7)
                .enumerate()
                .map(|(i, chunk)| {
                    Box::new(move || {
                        for v in chunk.iter_mut() {
                            *v += i + 1;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 7 + 1, "element {i}");
        }
        assert_eq!(pool.stats().batch_tasks_executed, 64usize.div_ceil(7));
    }

    #[test]
    fn zero_worker_pool_runs_batches_on_the_caller() {
        let pool = WorkerPool::new(0);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn batch_task_panic_is_rethrown_on_the_submitter_after_all_tasks_ran() {
        let pool = WorkerPool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let completed2 = Arc::clone(&completed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            tasks.push(Box::new(|| panic!("scripted batch panic")));
            for _ in 0..4 {
                let c = Arc::clone(&completed2);
                tasks.push(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
            pool.run_batch(tasks);
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-string payload");
        assert!(msg.contains("scripted batch panic"), "{msg}");
        // The panic must not abort the rest of the batch.
        assert_eq!(completed.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn detached_jobs_run_and_panics_recycle_the_worker() {
        let pool = WorkerPool::with_config(1, PoolConfig { restart_budget: 2 });
        let (done_tx, done_rx) = std::sync::mpsc::channel::<u32>();
        let tx = done_tx.clone();
        pool.spawn(move || {
            let _ = tx.send(1);
            panic!("scripted job panic");
        });
        let tx = done_tx.clone();
        // The pool must keep serving after the panic (fresh worker).
        pool.spawn(move || {
            let _ = tx.send(2);
        });
        let mut seen = Vec::new();
        for _ in 0..2 {
            seen.push(done_rx.recv_timeout(Duration::from_secs(10)).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        // Stats settle after the second job observed both executions.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.stats().worker_restarts < 1 {
            assert!(std::time::Instant::now() < deadline, "restart not observed");
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(stats.job_panics, 1);
        assert_eq!(stats.worker_restarts, 1);
    }

    #[test]
    fn restart_budget_bounds_recycling_but_keeps_the_worker() {
        let pool = WorkerPool::with_config(1, PoolConfig { restart_budget: 1 });
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        for i in 0..3 {
            let tx = tx.clone();
            pool.spawn(move || {
                let _ = tx.send(i);
                panic!("panic {i}");
            });
        }
        let tx_ok = tx.clone();
        pool.spawn(move || {
            let _ = tx_ok.send(99);
        });
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(rx.recv_timeout(Duration::from_secs(10)).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 99]);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.stats().restart_budget_exhausted < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "exhaustion not observed"
            );
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(stats.job_panics, 3);
        assert_eq!(stats.worker_restarts, 1);
        assert_eq!(stats.restart_budget_exhausted, 2);
    }

    #[test]
    fn recycle_request_outside_a_pool_job_is_a_no_op() {
        let pool = WorkerPool::new(1);
        assert!(!pool.recycle_current_worker());
        assert_eq!(pool.stats().worker_restarts, 0);
    }

    #[test]
    fn explicit_recycle_from_inside_a_job_respawns_the_worker() {
        let pool = Arc::new(WorkerPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel::<bool>();
        // recycle_current_worker needs the pool reference from inside the
        // job; the global() instance is avoided to keep the test hermetic.
        let p = Arc::clone(&pool);
        pool.spawn(move || {
            let _ = tx.send(p.recycle_current_worker());
        });
        assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.stats().worker_restarts < 1 {
            assert!(std::time::Instant::now() < deadline, "restart not observed");
            std::thread::yield_now();
        }
        assert_eq!(pool.stats().job_panics, 0);
    }

    #[test]
    fn nested_batches_complete_even_when_all_workers_are_busy() {
        // One worker, one long job occupying it: a scoped batch submitted
        // from the outside must still complete (on the submitting thread),
        // and a batch submitted from *inside* the busy worker must too.
        let pool = Arc::new(WorkerPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        let p = Arc::clone(&pool);
        pool.spawn(move || {
            let inner_sum = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let s = &inner_sum;
                    Box::new(move || {
                        s.fetch_add(i, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            p.run_batch(tasks);
            let _ = tx.send(inner_sum.load(Ordering::SeqCst));
        });
        let outer_sum = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                let s = &outer_sum;
                Box::new(move || {
                    s.fetch_add(i * 10, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(outer_sum.load(Ordering::SeqCst), 60);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 6);
    }

    #[test]
    fn poisoned_injector_lock_recovers_instead_of_cascading() {
        let pool = WorkerPool::new(1);
        // Poison the injector lock the only way it can happen in practice:
        // a thread dies while holding it.
        let inner = Arc::clone(&pool.inner);
        let _ = std::thread::spawn(move || {
            let _guard = inner.injector.lock().unwrap();
            panic!("die holding the injector lock");
        })
        .join();
        assert!(pool.inner.injector.is_poisoned());
        // Detached jobs and scoped batches must both keep working.
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        pool.spawn(move || {
            let _ = tx.send(7);
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert!(
            pool.stats().lock_poisonings >= 1,
            "the recovery must be counted"
        );
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().participants() >= 1);
    }
}
