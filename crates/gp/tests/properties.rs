//! Property-based tests of the classical GP: kernel validity and model behaviour.

use nnbo_gp::{ArdSquaredExponential, GpConfig, GpModel};
use nnbo_linalg::{Cholesky, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_values_are_bounded_by_the_signal_variance(
        sf2 in 0.1..5.0f64,
        ls in prop::collection::vec(0.1..3.0f64, 3),
        a in prop::collection::vec(-2.0..2.0f64, 3),
        b in prop::collection::vec(-2.0..2.0f64, 3),
    ) {
        let k = ArdSquaredExponential::new(sf2, ls);
        let v = k.eval(&a, &b);
        prop_assert!(v > 0.0 && v <= sf2 + 1e-12);
        prop_assert!((k.eval(&a, &a) - sf2).abs() < 1e-12);
        prop_assert!((v - k.eval(&b, &a)).abs() < 1e-14);
    }

    #[test]
    fn gram_matrix_plus_noise_is_positive_definite(
        xs in points(8, 2),
        sf2 in 0.2..3.0f64,
        l in 0.2..2.0f64,
    ) {
        let k = ArdSquaredExponential::isotropic(sf2, l, 2);
        let x = Matrix::from_rows(&xs);
        let mut gram = k.gram(&x);
        gram.add_diag(1e-6);
        prop_assert!(gram.is_symmetric(1e-12));
        prop_assert!(Cholesky::decompose(&gram).is_ok());
    }

    #[test]
    fn fitted_gp_predictions_are_finite_and_variances_nonnegative(
        seed in 0..200u64,
        queries in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 2), 1..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64) / 11.0, ((i * 7) % 12) as f64 / 11.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + x[1]).collect();
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        for q in &queries {
            let p = model.predict(q);
            prop_assert!(p.mean.is_finite());
            prop_assert!(p.variance.is_finite() && p.variance >= 0.0);
        }
    }

    #[test]
    fn gp_is_invariant_to_constant_target_shifts(
        shift in -100.0..100.0f64,
    ) {
        // Standardisation makes the fit invariant (up to numerical noise) to adding
        // a constant to all targets; predictions shift by exactly that constant.
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let ys_shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let base = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng1).unwrap();
        let shifted = GpModel::fit(&xs, &ys_shifted, &GpConfig::fast(), &mut rng2).unwrap();
        let q = [0.4];
        let a = base.predict(&q);
        let b = shifted.predict(&q);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6 * (1.0 + shift.abs()));
    }
}
