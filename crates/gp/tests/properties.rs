//! Property-based tests of the classical GP: kernel validity and model behaviour.

use nnbo_gp::{ArdSquaredExponential, GpConfig, GpModel};
use nnbo_linalg::{Cholesky, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_values_are_bounded_by_the_signal_variance(
        sf2 in 0.1..5.0f64,
        ls in prop::collection::vec(0.1..3.0f64, 3),
        a in prop::collection::vec(-2.0..2.0f64, 3),
        b in prop::collection::vec(-2.0..2.0f64, 3),
    ) {
        let k = ArdSquaredExponential::new(sf2, ls);
        let v = k.eval(&a, &b);
        prop_assert!(v > 0.0 && v <= sf2 + 1e-12);
        prop_assert!((k.eval(&a, &a) - sf2).abs() < 1e-12);
        prop_assert!((v - k.eval(&b, &a)).abs() < 1e-14);
    }

    #[test]
    fn gram_matrix_plus_noise_is_positive_definite(
        xs in points(8, 2),
        sf2 in 0.2..3.0f64,
        l in 0.2..2.0f64,
    ) {
        let k = ArdSquaredExponential::isotropic(sf2, l, 2);
        let x = Matrix::from_rows(&xs);
        let mut gram = k.gram(&x);
        gram.add_diag(1e-6);
        prop_assert!(gram.is_symmetric(1e-12));
        prop_assert!(Cholesky::decompose(&gram).is_ok());
    }

    #[test]
    fn fitted_gp_predictions_are_finite_and_variances_nonnegative(
        seed in 0..200u64,
        queries in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 2), 1..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64) / 11.0, ((i * 7) % 12) as f64 / 11.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + x[1]).collect();
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        for q in &queries {
            let p = model.predict(q);
            prop_assert!(p.mean.is_finite());
            prop_assert!(p.variance.is_finite() && p.variance >= 0.0);
        }
    }

    #[test]
    fn fit_multi_is_exactly_per_output_fit_with_derived_seeds(
        seed in 0..60u64,
        q in prop::collection::vec(0.0..1.0f64, 2),
    ) {
        // fit_multi draws one sub-seed per output from the supplied rng (in
        // target order); output i must be bit-identical to a plain fit with a
        // StdRng seeded from sub-seed i.
        let xs: Vec<Vec<f64>> = (0..14)
            .map(|i| vec![(i as f64) / 13.0, ((i * 5) % 14) as f64 / 13.0])
            .collect();
        let targets: Vec<Vec<f64>> = vec![
            xs.iter().map(|x| (3.0 * x[0]).sin() + x[1]).collect(),
            xs.iter().map(|x| x[0] * x[0] - 0.5 * x[1]).collect(),
            xs.iter().map(|x| (2.0 * x[1]).cos()).collect(),
        ];
        let config = GpConfig::fast();
        let mut rng = StdRng::seed_from_u64(seed);
        let models = GpModel::fit_multi(&xs, &targets, &config, &mut rng).unwrap();
        prop_assert!(models.len() == targets.len());

        let mut seed_rng = StdRng::seed_from_u64(seed);
        for (model, ys) in models.iter().zip(targets.iter()) {
            let sub_seed: u64 = seed_rng.gen();
            let mut output_rng = StdRng::seed_from_u64(sub_seed);
            let reference = GpModel::fit(&xs, ys, &config, &mut output_rng).unwrap();
            prop_assert_eq!(model.hyper_params(), reference.hyper_params());
            prop_assert!(model.nll() == reference.nll());
            let a = model.predict(&q);
            let b = reference.predict(&q);
            prop_assert!(a.mean == b.mean && a.variance == b.variance);
        }
    }

    #[test]
    fn gp_is_invariant_to_constant_target_shifts(
        shift in -100.0..100.0f64,
    ) {
        // Standardisation makes the fit invariant (up to numerical noise) to adding
        // a constant to all targets; predictions shift by exactly that constant.
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let ys_shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let base = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng1).unwrap();
        let shifted = GpModel::fit(&xs, &ys_shifted, &GpConfig::fast(), &mut rng2).unwrap();
        let q = [0.4];
        let a = base.predict(&q);
        let b = shifted.predict(&q);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6 * (1.0 + shift.abs()));
    }
}

// The warm-start quality property runs each case at the full production Adam
// budget (a warm descent needs its full `warm_iters` to track the cold
// optimum), so it gets its own block with fewer sampled cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn warm_started_refit_matches_cold_fit_quality(
        seed in 0..40u64,
    ) {
        // Fit cold on N points, append one observation, then refit both ways:
        // warm from the previous optimum must land within tolerance of (or
        // beat) the cold multi-restart fit on the extended data.
        let mut data_rng = StdRng::seed_from_u64(1000 + seed);
        let n = 24;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![data_rng.gen_range(0.0..1.0), data_rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (4.0 * x[0]).sin() + x[1] * x[1] + 0.1 * data_rng.gen_range(-1.0..1.0))
            .collect();
        let config = GpConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let first = GpModel::fit(&xs, &ys, &config, &mut rng).unwrap();

        let mut xs2 = xs;
        let mut ys2 = ys;
        xs2.push(vec![data_rng.gen_range(0.0..1.0), data_rng.gen_range(0.0..1.0)]);
        ys2.push((4.0 * xs2[n][0]).sin() + xs2[n][1] * xs2[n][1]);
        let mut warm_rng = StdRng::seed_from_u64(seed + 1);
        let warm = GpModel::fit_warm(&xs2, &ys2, &config, &mut warm_rng, Some(first.hyper_params()))
            .unwrap();
        let mut cold_rng = StdRng::seed_from_u64(seed + 1);
        let cold = GpModel::fit(&xs2, &ys2, &config, &mut cold_rng).unwrap();
        prop_assert!(
            warm.nll() <= cold.nll() + 0.5 * (1.0 + cold.nll().abs()),
            "warm NLL {} vs cold NLL {}", warm.nll(), cold.nll()
        );
    }
}
