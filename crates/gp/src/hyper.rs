//! GP hyper-parameters and fitting configuration.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the constant-mean ARD-SE Gaussian process, stored in log
/// space so that unconstrained gradient optimization keeps them positive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpHyperParams {
    /// `log σf` (log of the signal standard deviation).
    pub log_signal: f64,
    /// `log l_d` per input dimension.
    pub log_lengthscales: Vec<f64>,
    /// `log σn` (log of the observation-noise standard deviation).
    pub log_noise: f64,
    /// Constant prior mean `µ0` (in standardised target units).
    pub mean: f64,
}

impl GpHyperParams {
    /// Default starting point for a `dim`-dimensional problem on standardised data:
    /// unit signal, unit lengthscales, small noise, zero mean.
    pub fn standard(dim: usize) -> Self {
        GpHyperParams {
            log_signal: 0.0,
            log_lengthscales: vec![0.0; dim],
            log_noise: (1e-3_f64).ln(),
            mean: 0.0,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.log_lengthscales.len()
    }

    /// Signal variance `σf²`.
    pub fn signal_variance(&self) -> f64 {
        (2.0 * self.log_signal).exp()
    }

    /// Noise variance `σn²`.
    pub fn noise_variance(&self) -> f64 {
        (2.0 * self.log_noise).exp()
    }

    /// Lengthscales `l_d`.
    pub fn lengthscales(&self) -> Vec<f64> {
        self.log_lengthscales.iter().map(|l| l.exp()).collect()
    }

    /// Flattens to `[log_signal, log_l_1.., log_noise, mean]` for the optimizer.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.dim() + 3);
        v.push(self.log_signal);
        v.extend_from_slice(&self.log_lengthscales);
        v.push(self.log_noise);
        v.push(self.mean);
        v
    }

    /// Rebuilds from the flat representation produced by [`Self::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != dim + 3`.
    pub fn from_flat(flat: &[f64], dim: usize) -> Self {
        assert_eq!(flat.len(), dim + 3, "flat hyper-parameter length mismatch");
        GpHyperParams {
            log_signal: flat[0],
            log_lengthscales: flat[1..1 + dim].to_vec(),
            log_noise: flat[1 + dim],
            mean: flat[2 + dim],
        }
    }

    /// Clamps the log-parameters into numerically safe ranges.
    pub fn clamp(&mut self, min_log_noise: f64) {
        self.log_signal = self.log_signal.clamp(-6.0, 6.0);
        for l in &mut self.log_lengthscales {
            *l = l.clamp(-6.0, 8.0);
        }
        self.log_noise = self.log_noise.clamp(min_log_noise, 2.0);
        self.mean = self.mean.clamp(-10.0, 10.0);
    }
}

/// Configuration for fitting a [`crate::GpModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Number of random restarts of the hyper-parameter optimization.
    pub restarts: usize,
    /// Adam iterations per restart.
    pub max_iters: usize,
    /// Adam iterations of a *warm-started* refit (single descent from the
    /// previous optimum instead of `restarts × max_iters` cold iterations;
    /// see [`crate::GpModel::fit_warm`]).
    pub warm_iters: usize,
    /// Gradient-RMS threshold below which a warm descent stops early (the
    /// adaptive-`warm_iters` check: a warm start sitting at the optimum has
    /// nothing to descend).  `0.0` disables the early stop.
    pub warm_grad_tol: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Lower bound on `log σn` (keeps the kernel matrix well conditioned).
    pub min_log_noise: f64,
    /// Jitter added to the kernel diagonal if the Cholesky factorization fails.
    pub jitter: f64,
    /// Whether the targets are standardised to zero mean / unit variance before
    /// fitting (predictions are transformed back automatically).
    pub standardize_targets: bool,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            restarts: 2,
            max_iters: 150,
            warm_iters: 50,
            warm_grad_tol: 1e-4,
            learning_rate: 0.05,
            min_log_noise: (1e-4_f64).ln(),
            jitter: 1e-8,
            standardize_targets: true,
        }
    }
}

impl GpConfig {
    /// A cheaper configuration (single restart, fewer iterations) for tests and
    /// quick experiments.
    pub fn fast() -> Self {
        GpConfig {
            restarts: 1,
            max_iters: 60,
            warm_iters: 25,
            ..GpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_roundtrip() {
        let hp = GpHyperParams {
            log_signal: 0.3,
            log_lengthscales: vec![-0.5, 0.2, 1.0],
            log_noise: -3.0,
            mean: 0.7,
        };
        let flat = hp.to_flat();
        assert_eq!(flat.len(), 6);
        let back = GpHyperParams::from_flat(&flat, 3);
        assert_eq!(back, hp);
    }

    #[test]
    fn derived_quantities() {
        let hp = GpHyperParams::standard(2);
        assert!((hp.signal_variance() - 1.0).abs() < 1e-12);
        assert!((hp.noise_variance() - 1e-6).abs() < 1e-9);
        assert_eq!(hp.lengthscales(), vec![1.0, 1.0]);
    }

    #[test]
    fn clamp_bounds_parameters() {
        let mut hp = GpHyperParams {
            log_signal: 100.0,
            log_lengthscales: vec![-100.0],
            log_noise: -100.0,
            mean: 50.0,
        };
        hp.clamp((1e-4_f64).ln());
        assert!(hp.log_signal <= 6.0);
        assert!(hp.log_lengthscales[0] >= -6.0);
        assert!(hp.log_noise >= (1e-4_f64).ln());
        assert!(hp.mean <= 10.0);
    }
}
