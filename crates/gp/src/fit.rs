//! The shared fit context and the warm/cold hyper-parameter optimizer.
//!
//! Refitting a GP during Bayesian optimization has two structural redundancies
//! that this module removes:
//!
//! * **Within one fit** — every Adam iteration needs the kernel matrix and the
//!   gradient of the log marginal likelihood with respect to each
//!   log-lengthscale.  Both are functions of the *pairwise per-dimension
//!   squared differences* of the training rows, which do not depend on the
//!   hyper-parameters at all.  [`FitContext`] computes that `N × N × D` tensor
//!   once per refit; every iteration then builds the Gram matrix by a weighted
//!   reduction over it and accumulates all `D` lengthscale gradients in a
//!   single fused pass — no per-iteration `∂K/∂θ` matrices are materialised.
//! * **Across outputs** — the constrained BO loop fits one surrogate per
//!   output (objective plus each constraint) over the *same* `X`, so one
//!   [`FitContext`] serves every output of a
//!   [`crate::GpModel::fit_multi`] call; only the per-output Adam state,
//!   Cholesky factors and gradient scratch ([`FitScratch`]) are private.
//!
//! Warm starts remove a third redundancy *across refits*: once a model has
//! been fitted, the next refit (one appended observation) starts Adam from the
//! previous optimum and runs [`crate::GpConfig::warm_iters`] iterations instead
//! of `restarts × max_iters`, with a cold-restart fallback when the warm
//! path's NLL regresses past the standard initial point.

use nnbo_linalg::{Cholesky, Matrix};
use nnbo_nn::{Adam, Optimizer};
use rand::Rng;

use crate::{GpConfig, GpError, GpHyperParams};

/// Hyper-parameter-independent structure shared by every output and every
/// optimizer iteration of one refit: the pairwise per-dimension squared
/// differences of the training rows.
#[derive(Debug, Clone)]
pub struct FitContext {
    n: usize,
    dim: usize,
    /// `sqdiff[(i·n + j)·dim + d] = (x_i,d − x_j,d)²` — symmetric in `(i, j)`,
    /// zero diagonal; laid out with `d` fastest so the fused gradient pass
    /// reads one contiguous `D`-stripe per matrix entry.
    sqdiff: Vec<f64>,
}

impl FitContext {
    /// Builds the context for the training rows of `x` (`N × D`).
    pub fn new(x: &Matrix) -> Self {
        let n = x.nrows();
        let dim = x.ncols();
        let mut sqdiff = vec![0.0; n * n * dim];
        for i in 0..n {
            let xi = x.row(i);
            for j in 0..i {
                let xj = x.row(j);
                let lower = (i * n + j) * dim;
                let upper = (j * n + i) * dim;
                for d in 0..dim {
                    let diff = xi[d] - xj[d];
                    let sq = diff * diff;
                    sqdiff[lower + d] = sq;
                    sqdiff[upper + d] = sq;
                }
            }
        }
        FitContext { n, dim, sqdiff }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the context covers no points.
    #[allow(dead_code)] // completes the len/is_empty pair; exercised in tests
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes the ARD-SE kernel matrix for inverse squared lengthscale weights
    /// `inv_sq` and signal variance `sf2` into `out` (resized when needed).
    ///
    /// The direct distance evaluation is at least as accurate as the norm
    /// expansion used on the prediction path (no cancellation of large common
    /// offsets), and exactly symmetric with `σf²` on the diagonal.
    pub(crate) fn gram_into(&self, inv_sq: &[f64], sf2: f64, out: &mut Matrix) {
        debug_assert_eq!(inv_sq.len(), self.dim);
        let n = self.n;
        let dim = self.dim;
        if out.shape() != (n, n) {
            *out = Matrix::zeros(n, n);
        }
        for i in 0..n {
            out[(i, i)] = sf2;
            for j in 0..i {
                let stripe = &self.sqdiff[(i * n + j) * dim..(i * n + j + 1) * dim];
                let d2: f64 = stripe.iter().zip(inv_sq.iter()).map(|(&s, &w)| s * w).sum();
                let v = sf2 * (-0.5 * d2).exp();
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
    }
}

/// Per-output scratch buffers of the NLL/gradient evaluation, allocated once
/// per output and reused across every Adam iteration of a fit.
#[derive(Debug, Clone)]
pub struct FitScratch {
    /// Kernel matrix without noise (kept for the gradient pass).
    gram: Matrix,
    /// `K + σn² I`, the matrix handed to the Cholesky factorization.
    k: Matrix,
    /// Dense `(K + σn² I)⁻¹` for the trace terms.
    k_inv: Matrix,
    /// Centred targets `y − µ0`.
    residual: Vec<f64>,
    /// Inverse squared lengthscales of the current iterate.
    inv_sq: Vec<f64>,
    /// Per-dimension lengthscale trace-term accumulators.
    ls_grad: Vec<f64>,
    /// Gradient with respect to `[log σf, log l_1.., log σn, µ0]`.
    pub(crate) grad: Vec<f64>,
}

impl FitScratch {
    /// Allocates scratch for `n` training points in `dim` dimensions.
    pub fn new(n: usize, dim: usize) -> Self {
        FitScratch {
            gram: Matrix::zeros(n, n),
            k: Matrix::zeros(n, n),
            k_inv: Matrix::zeros(n, n),
            residual: vec![0.0; n],
            inv_sq: vec![0.0; dim],
            ls_grad: vec![0.0; dim],
            grad: vec![0.0; dim + 3],
        }
    }
}

/// Negative log marginal likelihood (eq. 4) at `hyper`, with the gradient with
/// respect to the flat hyper-parameter vector left in `scratch.grad`.
///
/// Returns `None` when the kernel matrix cannot be factored or the likelihood
/// or gradient is not finite, which the optimizer treats as "stop here".
/// Arithmetic notes: the Gram matrix comes from the context's distance tensor
/// (one weighted reduction per entry), and all `D` lengthscale trace terms are
/// accumulated in one fused pass over `(K⁻¹ − ααᵀ) ∘ K` — the only
/// per-iteration allocations left are inside the Cholesky factorization
/// itself.
pub(crate) fn nll_and_grad_into(
    ctx: &FitContext,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
    scratch: &mut FitScratch,
) -> Option<f64> {
    nll_into(ctx, y, hyper, jitter, scratch, true)
}

/// [`nll_and_grad_into`] with an optional gradient: `want_grad = false` stops
/// after the likelihood (one factorization + one solve), skipping the dense
/// `O(N³)` inverse and the fused trace pass — the mode used by warm-start
/// anchor checks and end-of-descent evaluations, which only read the scalar.
pub(crate) fn nll_into(
    ctx: &FitContext,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
    scratch: &mut FitScratch,
    want_grad: bool,
) -> Option<f64> {
    let n = ctx.len();
    let dim = ctx.dim();
    debug_assert_eq!(y.len(), n);
    debug_assert_eq!(hyper.dim(), dim);
    let FitScratch {
        gram,
        k,
        k_inv,
        residual,
        inv_sq,
        ls_grad,
        grad,
    } = scratch;

    for (w, l) in inv_sq.iter_mut().zip(hyper.log_lengthscales.iter()) {
        let ls = l.exp();
        *w = 1.0 / (ls * ls);
    }
    let sf2 = hyper.signal_variance();
    ctx.gram_into(inv_sq, sf2, gram);
    k.clone_from(gram);
    k.add_diag(hyper.noise_variance());
    let (chol, _) = Cholesky::decompose_with_jitter(k, jitter, 8).ok()?;

    for (r, v) in residual.iter_mut().zip(y.iter()) {
        *r = v - hyper.mean;
    }
    let alpha = chol.solve_vec(residual);
    let fit_term: f64 = residual.iter().zip(alpha.iter()).map(|(r, a)| r * a).sum();
    let log_det = chol.log_det();
    let nll = 0.5 * (fit_term + log_det + n as f64 * (2.0 * std::f64::consts::PI).ln());
    if !nll.is_finite() {
        return None;
    }
    if !want_grad {
        return Some(nll);
    }

    // Gradient: dL/dθ = ½ tr((K⁻¹ - α αᵀ) ∂K/∂θ), with
    //   ∂K/∂log σf = 2 K,   ∂K/∂log l_d = K ∘ sqdiff_d / l_d²,
    //   ∂K/∂log σn = 2 σn² I,   dL/dµ0 = -Σ α.
    chol.inverse_into(k_inv);
    let mut g_signal = 0.0;
    grad.fill(0.0);
    ls_grad.fill(0.0);
    for i in 0..n {
        let kinv_row = k_inv.row(i);
        let gram_row = gram.row(i);
        let ai = alpha[i];
        let stripes = &ctx.sqdiff[i * n * dim..(i + 1) * n * dim];
        for j in 0..n {
            let m = kinv_row[j] - ai * alpha[j];
            let mg = m * gram_row[j];
            g_signal += 2.0 * mg;
            let stripe = &stripes[j * dim..(j + 1) * dim];
            for ((g, &w), &s) in ls_grad.iter_mut().zip(inv_sq.iter()).zip(stripe.iter()) {
                *g += mg * w * s;
            }
        }
    }
    let noise_var = hyper.noise_variance();
    let mut g_noise = 0.0;
    for i in 0..n {
        g_noise += (k_inv[(i, i)] - alpha[i] * alpha[i]) * 2.0 * noise_var;
    }
    grad[0] = 0.5 * g_signal;
    for (g, v) in grad[1..1 + dim].iter_mut().zip(ls_grad.iter()) {
        *g = 0.5 * v;
    }
    grad[1 + dim] = 0.5 * g_noise;
    grad[2 + dim] = -alpha.iter().sum::<f64>();

    if grad.iter().any(|g| !g.is_finite()) {
        return None;
    }
    Some(nll)
}

/// Runs `iters` Adam steps from `start` and returns the clamped end point with
/// its NLL (`None` when no finite likelihood is ever reached).
fn run_adam(
    ctx: &FitContext,
    y: &[f64],
    config: &GpConfig,
    start: GpHyperParams,
    iters: usize,
    scratch: &mut FitScratch,
) -> Option<(f64, GpHyperParams)> {
    let dim = ctx.dim();
    let mut hyper = start;
    let mut adam = Adam::with_learning_rate(config.learning_rate);
    let mut flat = hyper.to_flat();
    for _ in 0..iters {
        hyper = GpHyperParams::from_flat(&flat, dim);
        hyper.clamp(config.min_log_noise);
        flat = hyper.to_flat();
        if nll_and_grad_into(ctx, y, &hyper, config.jitter, scratch).is_none() {
            break;
        }
        adam.step(&mut flat, &scratch.grad);
    }
    hyper = GpHyperParams::from_flat(&flat, dim);
    hyper.clamp(config.min_log_noise);
    nll_into(ctx, y, &hyper, config.jitter, scratch, false).map(|nll| (nll, hyper))
}

/// Cold path: multi-restart Adam from the standard initial point plus
/// `config.restarts − 1` random initialisations drawn from `rng`.
fn optimize_cold<R: Rng + ?Sized>(
    ctx: &FitContext,
    y: &[f64],
    config: &GpConfig,
    rng: &mut R,
    scratch: &mut FitScratch,
) -> Option<(f64, GpHyperParams)> {
    let dim = ctx.dim();
    let mut best: Option<(f64, GpHyperParams)> = None;
    for restart in 0..config.restarts.max(1) {
        let start = initial_hyper(dim, restart, rng);
        if let Some((nll, hyper)) = run_adam(ctx, y, config, start, config.max_iters, scratch) {
            if nll.is_finite() && best.as_ref().is_none_or(|(b, _)| nll < *b) {
                best = Some((nll, hyper));
            }
        }
    }
    best
}

/// Finds hyper-parameters for one output: warm-started from `warm` when
/// given, cold multi-restart otherwise.
///
/// The warm path runs a single Adam descent of `config.warm_iters` steps from
/// the previous optimum and accepts the result as long as it does not regress
/// past the likelihood of the *standard* initial point (evaluated, not
/// optimized) — the cheap anchor that detects a stale or diverged warm start.
/// On regression it falls back to the full cold path and keeps the better of
/// the two, so a warm fit is never worse than that fallback anchor.  Only the
/// fallback consumes `rng`.
pub(crate) fn optimize_hypers<R: Rng + ?Sized>(
    ctx: &FitContext,
    y: &[f64],
    config: &GpConfig,
    rng: &mut R,
    warm: Option<&GpHyperParams>,
    scratch: &mut FitScratch,
) -> Result<(f64, GpHyperParams), GpError> {
    let dim = ctx.dim();
    if let Some(prev) = warm {
        if prev.dim() == dim {
            let mut start = prev.clone();
            start.clamp(config.min_log_noise);
            let warm_result = run_adam(ctx, y, config, start, config.warm_iters, scratch);
            let anchor = {
                let standard = GpHyperParams::standard(dim);
                nll_into(ctx, y, &standard, config.jitter, scratch, false)
            };
            match (&warm_result, anchor) {
                (Some((warm_nll, _)), Some(anchor_nll)) if *warm_nll <= anchor_nll => {
                    let (nll, hyper) = warm_result.expect("matched Some above");
                    return Ok((nll, hyper));
                }
                (Some((warm_nll, _)), None) if warm_nll.is_finite() => {
                    let (nll, hyper) = warm_result.expect("matched Some above");
                    return Ok((nll, hyper));
                }
                _ => {
                    // Warm path regressed (or died): cold-restart fallback,
                    // keeping the warm result if it still wins.
                    let cold = optimize_cold(ctx, y, config, rng, scratch);
                    let best = match (warm_result, cold) {
                        (Some(w), Some(c)) => Some(if w.0 <= c.0 { w } else { c }),
                        (w, c) => w.or(c),
                    };
                    return best.ok_or(GpError::OptimizationFailed);
                }
            }
        }
    }
    optimize_cold(ctx, y, config, rng, scratch).ok_or(GpError::OptimizationFailed)
}

/// Initial hyper-parameters of restart `restart` (the first restart uses the
/// deterministic standard point; later ones draw from `rng`).
pub(crate) fn initial_hyper<R: Rng + ?Sized>(
    dim: usize,
    restart: usize,
    rng: &mut R,
) -> GpHyperParams {
    if restart == 0 {
        GpHyperParams::standard(dim)
    } else {
        GpHyperParams {
            log_signal: rng.gen_range(-1.0..1.0),
            log_lengthscales: (0..dim).map(|_| rng.gen_range(-1.5..1.5)).collect(),
            log_noise: rng.gen_range(-6.0..-2.0),
            mean: rng.gen_range(-0.5..0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_distance_tensor_is_symmetric_with_zero_diagonal() {
        let x = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.4], vec![-0.5, 0.2]]);
        let ctx = FitContext::new(&x);
        assert_eq!(ctx.len(), 3);
        assert_eq!(ctx.dim(), 2);
        assert!(!ctx.is_empty());
        for i in 0..3 {
            for d in 0..2 {
                assert_eq!(ctx.sqdiff[(i * 3 + i) * 2 + d], 0.0);
            }
            for j in 0..3 {
                for d in 0..2 {
                    let expect = (x[(i, d)] - x[(j, d)]) * (x[(i, d)] - x[(j, d)]);
                    assert_eq!(ctx.sqdiff[(i * 3 + j) * 2 + d], expect);
                    assert_eq!(ctx.sqdiff[(j * 3 + i) * 2 + d], expect);
                }
            }
        }
    }

    #[test]
    fn context_gram_matches_scalar_kernel_eval() {
        let k = crate::ArdSquaredExponential::new(1.7, vec![0.4, 1.2, 2.5]);
        let x = Matrix::from_rows(
            &(0..7)
                .map(|i| {
                    vec![
                        i as f64 * 0.11,
                        (i * i % 5) as f64 * 0.2,
                        1.0 - i as f64 * 0.07,
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let ctx = FitContext::new(&x);
        let inv_sq: Vec<f64> = k.lengthscales().iter().map(|l| 1.0 / (l * l)).collect();
        let mut g = Matrix::zeros(1, 1);
        ctx.gram_into(&inv_sq, k.signal_variance(), &mut g);
        for i in 0..x.nrows() {
            for j in 0..x.nrows() {
                let reference = k.eval(x.row(i), x.row(j));
                assert!((g[(i, j)] - reference).abs() < 1e-12, "gram ({i},{j})");
            }
        }
    }
}
