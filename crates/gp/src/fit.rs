//! The shared fit context and the warm/cold hyper-parameter optimizer.
//!
//! Refitting a GP during Bayesian optimization has two structural redundancies
//! that this module removes:
//!
//! * **Within one fit** — every Adam iteration needs the kernel matrix and the
//!   gradient of the log marginal likelihood with respect to each
//!   log-lengthscale.  Both are functions of the *pairwise per-dimension
//!   squared differences* of the training rows, which do not depend on the
//!   hyper-parameters at all.  [`FitContext`] computes that `N × N × D` tensor
//!   once per refit; every iteration then builds the Gram matrix by a weighted
//!   reduction over it and accumulates all `D` lengthscale gradients in a
//!   single fused pass — no per-iteration `∂K/∂θ` matrices are materialised.
//! * **Across outputs** — the constrained BO loop fits one surrogate per
//!   output (objective plus each constraint) over the *same* `X`, so one
//!   [`FitContext`] serves every output of a
//!   [`crate::GpModel::fit_multi`] call; only the per-output Adam state,
//!   Cholesky factors and gradient scratch ([`FitScratch`]) are private.
//!
//! Warm starts remove a third redundancy *across refits*: once a model has
//! been fitted, the next refit (one appended observation) starts Adam from the
//! previous optimum and runs [`crate::GpConfig::warm_iters`] iterations instead
//! of `restarts × max_iters`, with a cold-restart fallback when the warm
//! path's NLL regresses past the standard initial point.

use nnbo_linalg::{Cholesky, Matrix};
use nnbo_nn::{Adam, Optimizer};
use rand::Rng;

use crate::{GpConfig, GpError, GpHyperParams};

/// Hyper-parameter-independent structure shared by every output and every
/// optimizer iteration of one refit: the pairwise per-dimension squared
/// differences of the training rows.
///
/// The tensor is stored with *capacity-strided* rows so a Bayesian-
/// optimization loop can grow it by one observation at a time
/// ([`FitContext::append`], `O(N·D)` amortised) instead of rebuilding the
/// whole `N × N × D` tensor every refit; [`FitContext::update_to`] applies
/// that incrementally whenever the new design matrix extends the previous
/// one and falls back to a full rebuild otherwise.  Appended entries are
/// computed by exactly the arithmetic the full rebuild uses, so an
/// incrementally grown context is bit-identical to a fresh one.
#[derive(Debug, Clone)]
pub struct FitContext {
    n: usize,
    dim: usize,
    /// Row stride of the tensor in points (`cap ≥ n`); rows are laid out at
    /// this stride so appends only re-layout when the capacity is exhausted.
    cap: usize,
    /// `sqdiff[(i·cap + j)·dim + d] = (x_i,d − x_j,d)²` — symmetric in
    /// `(i, j)`, zero diagonal; laid out with `d` fastest so the fused
    /// gradient pass reads one contiguous `D`-stripe per matrix entry.
    sqdiff: Vec<f64>,
    /// The training rows the tensor describes, kept so [`FitContext::append`]
    /// can difference a new point against them and
    /// [`FitContext::update_to`] can verify the prefix.
    x: Matrix,
}

impl FitContext {
    /// Builds the context for the training rows of `x` (`N × D`).
    pub fn new(x: &Matrix) -> Self {
        let n = x.nrows();
        let dim = x.ncols();
        let mut sqdiff = vec![0.0; n * n * dim];
        for i in 0..n {
            let xi = x.row(i);
            for j in 0..i {
                let xj = x.row(j);
                let lower = (i * n + j) * dim;
                let upper = (j * n + i) * dim;
                for d in 0..dim {
                    let diff = xi[d] - xj[d];
                    let sq = diff * diff;
                    sqdiff[lower + d] = sq;
                    sqdiff[upper + d] = sq;
                }
            }
        }
        FitContext {
            n,
            dim,
            cap: n,
            sqdiff,
            x: x.clone(),
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the context covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `D`-stripe of squared per-dimension differences between points `i`
    /// and `j`.
    #[inline]
    pub(crate) fn stripe(&self, i: usize, j: usize) -> &[f64] {
        let base = (i * self.cap + j) * self.dim;
        &self.sqdiff[base..base + self.dim]
    }

    /// Appends one training point: one new row/column of squared differences,
    /// `O(N·D)` work (amortised — the tensor re-layouts only when its
    /// capacity is exhausted, growing by 25% then).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim()`.
    pub fn append(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "append dimension mismatch");
        let n = self.n;
        let dim = self.dim;
        if n + 1 > self.cap {
            let new_cap = (n + 1) + (n + 1) / 4;
            let mut grown = vec![0.0; new_cap * new_cap * dim];
            for i in 0..n {
                grown[i * new_cap * dim..(i * new_cap + n) * dim]
                    .copy_from_slice(&self.sqdiff[i * self.cap * dim..(i * self.cap + n) * dim]);
            }
            self.sqdiff = grown;
            self.cap = new_cap;
        }
        let cap = self.cap;
        for j in 0..n {
            let xj = self.x.row(j);
            let lower = (n * cap + j) * dim;
            let upper = (j * cap + n) * dim;
            for d in 0..dim {
                let diff = row[d] - xj[d];
                let sq = diff * diff;
                self.sqdiff[lower + d] = sq;
                self.sqdiff[upper + d] = sq;
            }
        }
        let diag = (n * cap + n) * dim;
        self.sqdiff[diag..diag + dim].fill(0.0);
        self.x = Matrix::vstack(&self.x, &Matrix::from_rows(&[row.to_vec()]));
        self.n = n + 1;
    }

    /// Brings the context up to date with `x`: when `x` extends the rows the
    /// context was built from (the append-only growth of a BO history), the
    /// missing points are [`FitContext::append`]ed in `O(N·D)` each and the
    /// call returns `true`; any other change triggers a full rebuild and
    /// returns `false`.  Either way the context describes exactly `x`
    /// afterwards, bit-identical to `FitContext::new(x)`.
    pub fn update_to(&mut self, x: &Matrix) -> bool {
        let extends = self.n > 0
            && x.ncols() == self.dim
            && x.nrows() >= self.n
            && x.as_slice()[..self.n * self.dim] == *self.x.as_slice();
        if !extends {
            *self = FitContext::new(x);
            return false;
        }
        for r in self.n..x.nrows() {
            self.append(x.row(r));
        }
        true
    }

    /// Writes the ARD-SE kernel matrix for inverse squared lengthscale weights
    /// `inv_sq` and signal variance `sf2` into `out` (resized when needed).
    ///
    /// The direct distance evaluation is at least as accurate as the norm
    /// expansion used on the prediction path (no cancellation of large common
    /// offsets), and exactly symmetric with `σf²` on the diagonal.  The
    /// weighted reduction per entry runs on the dispatched FMA dot kernel.
    pub(crate) fn gram_into(&self, inv_sq: &[f64], sf2: f64, out: &mut Matrix) {
        debug_assert_eq!(inv_sq.len(), self.dim);
        let n = self.n;
        if out.shape() != (n, n) {
            *out = Matrix::zeros(n, n);
        }
        for i in 0..n {
            out[(i, i)] = sf2;
            for j in 0..i {
                let d2 = nnbo_linalg::fused_dot(self.stripe(i, j), inv_sq);
                let v = sf2 * (-0.5 * d2).exp();
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
    }
}

/// Per-output scratch buffers of the NLL/gradient evaluation, allocated once
/// per output and reused across every Adam iteration of a fit.
#[derive(Debug, Clone)]
pub struct FitScratch {
    /// Kernel matrix without noise (kept for the gradient pass).
    gram: Matrix,
    /// `K + σn² I`, the matrix handed to the Cholesky factorization.
    k: Matrix,
    /// Dense `(K + σn² I)⁻¹` for the trace terms.
    k_inv: Matrix,
    /// Scratch for the triangular inverse `L⁻¹` of the dpotri-style pass.
    k_inv_work: Matrix,
    /// Centred targets `y − µ0`.
    residual: Vec<f64>,
    /// Inverse squared lengthscales of the current iterate.
    inv_sq: Vec<f64>,
    /// Per-dimension lengthscale trace-term accumulators.
    ls_grad: Vec<f64>,
    /// Gradient with respect to `[log σf, log l_1.., log σn, µ0]`.
    pub(crate) grad: Vec<f64>,
}

impl FitScratch {
    /// Allocates scratch for `n` training points in `dim` dimensions.
    pub fn new(n: usize, dim: usize) -> Self {
        FitScratch {
            gram: Matrix::zeros(n, n),
            k: Matrix::zeros(n, n),
            k_inv: Matrix::zeros(n, n),
            k_inv_work: Matrix::zeros(n, n),
            residual: vec![0.0; n],
            inv_sq: vec![0.0; dim],
            ls_grad: vec![0.0; dim],
            grad: vec![0.0; dim + 3],
        }
    }

    /// The gradient left by the last evaluation, ordered
    /// `[log σf, log l_1.., log σn, µ0]`.
    pub fn grad(&self) -> &[f64] {
        &self.grad
    }
}

/// How the NLL gradient obtains the dense `(K + σn²I)⁻¹` it traces against.
///
/// [`InverseStrategy::Symmetric`] is the production path; the dense-sweep
/// variant is kept so benchmarks and property tests can compare the two on
/// identical inputs (`reproduce fit`'s `symmetric_inverse` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InverseStrategy {
    /// dpotri-style: invert the triangular factor, form `WᵀW` touching only
    /// the lower triangle, and run the fused trace pass over that triangle
    /// (off-diagonal terms doubled) — roughly half the work of the sweeps.
    Symmetric,
    /// Two dense triangular sweeps over the identity
    /// ([`Cholesky::inverse_into`]) and a full-square trace pass — the
    /// pre-dpotri reference.
    DenseSweeps,
}

/// Negative log marginal likelihood (eq. 4) at `hyper`, with the gradient with
/// respect to the flat hyper-parameter vector left in `scratch.grad`.
///
/// Returns `None` when the kernel matrix cannot be factored or the likelihood
/// or gradient is not finite, which the optimizer treats as "stop here".
/// Arithmetic notes: the Gram matrix comes from the context's distance tensor
/// (one weighted reduction per entry), and all `D` lengthscale trace terms are
/// accumulated in one fused pass over `(K⁻¹ − ααᵀ) ∘ K` — the only
/// per-iteration allocations left are inside the Cholesky factorization
/// itself.
pub(crate) fn nll_and_grad_into(
    ctx: &FitContext,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
    scratch: &mut FitScratch,
) -> Option<f64> {
    nll_into(
        ctx,
        y,
        hyper,
        jitter,
        scratch,
        true,
        InverseStrategy::Symmetric,
    )
}

/// Public probe of one NLL/gradient evaluation with an explicit
/// [`InverseStrategy`] — the entry point `reproduce fit` times and the
/// equivalence property tests compare.  The gradient is left in
/// [`FitScratch::grad`].
///
/// # Panics
///
/// Panics if `y` or `scratch` do not match the context's size and
/// dimensionality (`scratch` must come from
/// `FitScratch::new(ctx.len(), ctx.dim())`).
pub fn nll_and_grad_with(
    ctx: &FitContext,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
    scratch: &mut FitScratch,
    strategy: InverseStrategy,
) -> Option<f64> {
    assert_eq!(y.len(), ctx.len(), "targets/context length mismatch");
    assert_eq!(hyper.dim(), ctx.dim(), "hyper/context dimension mismatch");
    assert_eq!(
        scratch.residual.len(),
        ctx.len(),
        "scratch sized for a different training-set length"
    );
    assert_eq!(
        scratch.inv_sq.len(),
        ctx.dim(),
        "scratch sized for a different dimensionality"
    );
    nll_into(ctx, y, hyper, jitter, scratch, true, strategy)
}

/// [`nll_and_grad_into`] with an optional gradient: `want_grad = false` stops
/// after the likelihood (one factorization + one solve), skipping the dense
/// `O(N³)` inverse and the fused trace pass — the mode used by warm-start
/// anchor checks and end-of-descent evaluations, which only read the scalar.
pub(crate) fn nll_into(
    ctx: &FitContext,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
    scratch: &mut FitScratch,
    want_grad: bool,
    strategy: InverseStrategy,
) -> Option<f64> {
    let n = ctx.len();
    let dim = ctx.dim();
    debug_assert_eq!(y.len(), n);
    debug_assert_eq!(hyper.dim(), dim);
    let FitScratch {
        gram,
        k,
        k_inv,
        k_inv_work,
        residual,
        inv_sq,
        ls_grad,
        grad,
    } = scratch;

    for (w, l) in inv_sq.iter_mut().zip(hyper.log_lengthscales.iter()) {
        let ls = l.exp();
        *w = 1.0 / (ls * ls);
    }
    let sf2 = hyper.signal_variance();
    ctx.gram_into(inv_sq, sf2, gram);
    k.clone_from(gram);
    k.add_diag(hyper.noise_variance());
    let (chol, _) = Cholesky::decompose_with_jitter(k, jitter, 8).ok()?;

    for (r, v) in residual.iter_mut().zip(y.iter()) {
        *r = v - hyper.mean;
    }
    let alpha = chol.solve_vec(residual);
    let fit_term: f64 = residual.iter().zip(alpha.iter()).map(|(r, a)| r * a).sum();
    let log_det = chol.log_det();
    let nll = 0.5 * (fit_term + log_det + n as f64 * (2.0 * std::f64::consts::PI).ln());
    if !nll.is_finite() {
        return None;
    }
    if !want_grad {
        return Some(nll);
    }

    // Gradient: dL/dθ = ½ tr((K⁻¹ - α αᵀ) ∂K/∂θ), with
    //   ∂K/∂log σf = 2 K,   ∂K/∂log l_d = K ∘ sqdiff_d / l_d²,
    //   ∂K/∂log σn = 2 σn² I,   dL/dµ0 = -Σ α.
    let mut g_signal = 0.0;
    grad.fill(0.0);
    ls_grad.fill(0.0);
    match strategy {
        InverseStrategy::Symmetric => {
            // Every matrix in the trace — K⁻¹, ααᵀ, K, the distance stripes —
            // is symmetric, so the fused pass visits only `j < i`, doubling
            // those terms, plus the diagonal (whose distance stripes are
            // zero, so it contributes to the signal term alone).
            chol.symmetric_inverse_into(k_inv, k_inv_work);
            for i in 0..n {
                let kinv_row = k_inv.row(i);
                let gram_row = gram.row(i);
                let ai = alpha[i];
                let mut row_signal = 0.0;
                for j in 0..i {
                    let m = kinv_row[j] - ai * alpha[j];
                    let mg = m * gram_row[j];
                    row_signal += mg;
                    nnbo_linalg::add_scaled_product(ls_grad, inv_sq, ctx.stripe(i, j), mg);
                }
                let m_diag = kinv_row[i] - ai * ai;
                g_signal += 2.0 * (2.0 * row_signal + m_diag * gram_row[i]);
            }
            for g in ls_grad.iter_mut() {
                *g *= 2.0;
            }
        }
        InverseStrategy::DenseSweeps => {
            chol.inverse_into(k_inv);
            for i in 0..n {
                let kinv_row = k_inv.row(i);
                let gram_row = gram.row(i);
                let ai = alpha[i];
                for j in 0..n {
                    let m = kinv_row[j] - ai * alpha[j];
                    let mg = m * gram_row[j];
                    g_signal += 2.0 * mg;
                    let stripe = ctx.stripe(i, j);
                    for ((g, &w), &s) in ls_grad.iter_mut().zip(inv_sq.iter()).zip(stripe.iter()) {
                        *g += mg * w * s;
                    }
                }
            }
        }
    }
    let noise_var = hyper.noise_variance();
    let mut g_noise = 0.0;
    for i in 0..n {
        g_noise += (k_inv[(i, i)] - alpha[i] * alpha[i]) * 2.0 * noise_var;
    }
    grad[0] = 0.5 * g_signal;
    for (g, v) in grad[1..1 + dim].iter_mut().zip(ls_grad.iter()) {
        *g = 0.5 * v;
    }
    grad[1 + dim] = 0.5 * g_noise;
    grad[2 + dim] = -alpha.iter().sum::<f64>();

    if grad.iter().any(|g| !g.is_finite()) {
        return None;
    }
    Some(nll)
}

/// Runs `iters` Adam steps from `start` and returns the clamped end point with
/// its NLL (`None` when no finite likelihood is ever reached).
///
/// With `grad_tol = Some(tol)` the descent stops early once the gradient RMS
/// drops to `tol` — the adaptive-`warm_iters` check warm refits use, since a
/// warm start that begins at (or quickly reaches) the optimum has nothing
/// left to descend.
fn run_adam(
    ctx: &FitContext,
    y: &[f64],
    config: &GpConfig,
    start: GpHyperParams,
    iters: usize,
    grad_tol: Option<f64>,
    scratch: &mut FitScratch,
) -> Option<(f64, GpHyperParams)> {
    let dim = ctx.dim();
    let mut hyper = start;
    let mut adam = Adam::with_learning_rate(config.learning_rate);
    let mut flat = hyper.to_flat();
    for _ in 0..iters {
        hyper = GpHyperParams::from_flat(&flat, dim);
        hyper.clamp(config.min_log_noise);
        flat = hyper.to_flat();
        if nll_and_grad_into(ctx, y, &hyper, config.jitter, scratch).is_none() {
            break;
        }
        if let Some(tol) = grad_tol {
            let rms = (scratch.grad.iter().map(|g| g * g).sum::<f64>() / scratch.grad.len() as f64)
                .sqrt();
            if rms <= tol {
                break;
            }
        }
        adam.step(&mut flat, &scratch.grad);
    }
    hyper = GpHyperParams::from_flat(&flat, dim);
    hyper.clamp(config.min_log_noise);
    nll_into(
        ctx,
        y,
        &hyper,
        config.jitter,
        scratch,
        false,
        InverseStrategy::Symmetric,
    )
    .map(|nll| (nll, hyper))
}

/// Cold path: multi-restart Adam from the standard initial point plus
/// `config.restarts − 1` random initialisations drawn from `rng`.
fn optimize_cold<R: Rng + ?Sized>(
    ctx: &FitContext,
    y: &[f64],
    config: &GpConfig,
    rng: &mut R,
    scratch: &mut FitScratch,
) -> Option<(f64, GpHyperParams)> {
    let dim = ctx.dim();
    let mut best: Option<(f64, GpHyperParams)> = None;
    for restart in 0..config.restarts.max(1) {
        let start = initial_hyper(dim, restart, rng);
        if let Some((nll, hyper)) = run_adam(ctx, y, config, start, config.max_iters, None, scratch)
        {
            if nll.is_finite() && best.as_ref().is_none_or(|(b, _)| nll < *b) {
                best = Some((nll, hyper));
            }
        }
    }
    best
}

/// Finds hyper-parameters for one output: warm-started from `warm` when
/// given, cold multi-restart otherwise.
///
/// The warm path runs a single Adam descent of *at most* `config.warm_iters`
/// steps from the previous optimum — stopping early once the gradient RMS
/// falls to [`GpConfig::warm_grad_tol`], which trims refits whose warm start
/// is already converged — and accepts the result as long as it does not
/// regress past the likelihood of the *standard* initial point (evaluated,
/// not optimized) — the cheap anchor that detects a stale or diverged warm
/// start.  On regression it falls back to the full cold path and keeps the
/// better of the two, so a warm fit is never worse than that fallback anchor.
/// Only the fallback consumes `rng`.
pub(crate) fn optimize_hypers<R: Rng + ?Sized>(
    ctx: &FitContext,
    y: &[f64],
    config: &GpConfig,
    rng: &mut R,
    warm: Option<&GpHyperParams>,
    scratch: &mut FitScratch,
) -> Result<(f64, GpHyperParams), GpError> {
    let dim = ctx.dim();
    if let Some(prev) = warm {
        if prev.dim() == dim {
            let mut start = prev.clone();
            start.clamp(config.min_log_noise);
            let grad_tol = (config.warm_grad_tol > 0.0).then_some(config.warm_grad_tol);
            let warm_result = run_adam(ctx, y, config, start, config.warm_iters, grad_tol, scratch);
            let anchor = {
                let standard = GpHyperParams::standard(dim);
                nll_into(
                    ctx,
                    y,
                    &standard,
                    config.jitter,
                    scratch,
                    false,
                    InverseStrategy::Symmetric,
                )
            };
            match (&warm_result, anchor) {
                (Some((warm_nll, _)), Some(anchor_nll)) if *warm_nll <= anchor_nll => {
                    let (nll, hyper) = warm_result.expect("matched Some above");
                    return Ok((nll, hyper));
                }
                (Some((warm_nll, _)), None) if warm_nll.is_finite() => {
                    let (nll, hyper) = warm_result.expect("matched Some above");
                    return Ok((nll, hyper));
                }
                _ => {
                    // Warm path regressed (or died): cold-restart fallback,
                    // keeping the warm result if it still wins.
                    let cold = optimize_cold(ctx, y, config, rng, scratch);
                    let best = match (warm_result, cold) {
                        (Some(w), Some(c)) => Some(if w.0 <= c.0 { w } else { c }),
                        (w, c) => w.or(c),
                    };
                    return best.ok_or(GpError::OptimizationFailed);
                }
            }
        }
    }
    optimize_cold(ctx, y, config, rng, scratch).ok_or(GpError::OptimizationFailed)
}

/// Initial hyper-parameters of restart `restart` (the first restart uses the
/// deterministic standard point; later ones draw from `rng`).
pub(crate) fn initial_hyper<R: Rng + ?Sized>(
    dim: usize,
    restart: usize,
    rng: &mut R,
) -> GpHyperParams {
    if restart == 0 {
        GpHyperParams::standard(dim)
    } else {
        GpHyperParams {
            log_signal: rng.gen_range(-1.0..1.0),
            log_lengthscales: (0..dim).map(|_| rng.gen_range(-1.5..1.5)).collect(),
            log_noise: rng.gen_range(-6.0..-2.0),
            mean: rng.gen_range(-0.5..0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_distance_tensor_is_symmetric_with_zero_diagonal() {
        let x = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.4], vec![-0.5, 0.2]]);
        let ctx = FitContext::new(&x);
        assert_eq!(ctx.len(), 3);
        assert_eq!(ctx.dim(), 2);
        assert!(!ctx.is_empty());
        for i in 0..3 {
            for d in 0..2 {
                assert_eq!(ctx.sqdiff[(i * 3 + i) * 2 + d], 0.0);
            }
            for j in 0..3 {
                for d in 0..2 {
                    let expect = (x[(i, d)] - x[(j, d)]) * (x[(i, d)] - x[(j, d)]);
                    assert_eq!(ctx.sqdiff[(i * 3 + j) * 2 + d], expect);
                    assert_eq!(ctx.sqdiff[(j * 3 + i) * 2 + d], expect);
                }
            }
        }
    }

    #[test]
    fn incrementally_grown_context_is_bit_identical_to_full_rebuild() {
        // Grow point by point across several capacity re-layouts and compare
        // every stripe and the Gram matrix against a fresh build.
        let dim = 3;
        let rows: Vec<Vec<f64>> = (0..23)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 7 + d * 13) % 19) as f64 * 0.11 - 1.0)
                    .collect()
            })
            .collect();
        let mut grown = FitContext::new(&Matrix::from_rows(&rows[..1]));
        for r in &rows[1..] {
            grown.append(r);
        }
        let fresh = FitContext::new(&Matrix::from_rows(&rows));
        assert_eq!(grown.len(), fresh.len());
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                assert_eq!(grown.stripe(i, j), fresh.stripe(i, j), "stripe ({i},{j})");
            }
        }
        let inv_sq = [0.9, 1.4, 0.3];
        let mut g_grown = Matrix::zeros(1, 1);
        let mut g_fresh = Matrix::zeros(1, 1);
        grown.gram_into(&inv_sq, 1.3, &mut g_grown);
        fresh.gram_into(&inv_sq, 1.3, &mut g_fresh);
        assert_eq!(g_grown.as_slice(), g_fresh.as_slice());
    }

    #[test]
    fn update_to_appends_on_extension_and_rebuilds_on_change() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![i as f64 * 0.2, 1.0 - i as f64 * 0.1])
            .collect();
        let mut ctx = FitContext::new(&Matrix::from_rows(&rows[..4]));
        // Extension: incremental path.
        let extended = Matrix::from_rows(&rows);
        assert!(ctx.update_to(&extended));
        let fresh = FitContext::new(&extended);
        assert_eq!(ctx.len(), 6);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(ctx.stripe(i, j), fresh.stripe(i, j));
            }
        }
        // A changed prefix forces a rebuild.
        let mut altered_rows = rows.clone();
        altered_rows[0][0] += 0.5;
        let altered = Matrix::from_rows(&altered_rows);
        assert!(!ctx.update_to(&altered));
        let rebuilt = FitContext::new(&altered);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(ctx.stripe(i, j), rebuilt.stripe(i, j));
            }
        }
        // Shrinking also rebuilds.
        let shorter = Matrix::from_rows(&rows[..3]);
        assert!(!ctx.update_to(&shorter));
        assert_eq!(ctx.len(), 3);
    }

    #[test]
    fn symmetric_and_dense_sweep_strategies_agree() {
        let x = Matrix::from_rows(
            &(0..17)
                .map(|i| {
                    vec![
                        i as f64 * 0.07,
                        ((i * i) % 11) as f64 * 0.09,
                        1.0 / (1.0 + i as f64),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let y: Vec<f64> = (0..17).map(|i| ((i * 5 % 7) as f64 - 3.0) * 0.4).collect();
        let ctx = FitContext::new(&x);
        let hyper = GpHyperParams {
            log_signal: 0.3,
            log_lengthscales: vec![-0.4, 0.2, 0.6],
            log_noise: -2.2,
            mean: 0.05,
        };
        let mut scratch = FitScratch::new(17, 3);
        let nll_sym = nll_and_grad_with(
            &ctx,
            &y,
            &hyper,
            1e-10,
            &mut scratch,
            InverseStrategy::Symmetric,
        )
        .unwrap();
        let grad_sym = scratch.grad.clone();
        let nll_dense = nll_and_grad_with(
            &ctx,
            &y,
            &hyper,
            1e-10,
            &mut scratch,
            InverseStrategy::DenseSweeps,
        )
        .unwrap();
        let grad_dense = scratch.grad.clone();
        assert!(
            (nll_sym - nll_dense).abs() < 1e-9 * (1.0 + nll_dense.abs()),
            "nll {nll_sym} vs {nll_dense}"
        );
        for (a, b) in grad_sym.iter().zip(grad_dense.iter()) {
            assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()), "grad {a} vs {b}");
        }
    }

    #[test]
    fn warm_descent_stops_early_when_gradient_rms_is_tiny() {
        let x = Matrix::from_rows(
            &(0..12)
                .map(|i| vec![i as f64 / 11.0, (i as f64 / 11.0).powi(2)])
                .collect::<Vec<_>>(),
        );
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.4).sin()).collect();
        let ctx = FitContext::new(&x);
        let mut scratch = FitScratch::new(12, 2);
        let config = GpConfig::default();
        let start = GpHyperParams {
            log_signal: 0.1,
            log_lengthscales: vec![0.3, -0.2],
            log_noise: -2.0,
            mean: 0.0,
        };
        let mut expected = start.clone();
        expected.clamp(config.min_log_noise);
        // An infinite tolerance stops the descent before its first Adam step:
        // the result is exactly the clamped start point.
        let (_, stopped) = run_adam(
            &ctx,
            &y,
            &config,
            start.clone(),
            config.warm_iters,
            Some(f64::INFINITY),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(stopped, expected);
        // No tolerance: the same descent takes its steps and moves.
        let (_, moved) = run_adam(
            &ctx,
            &y,
            &config,
            start,
            config.warm_iters,
            None,
            &mut scratch,
        )
        .unwrap();
        assert_ne!(moved, expected, "full descent should move off the start");
    }

    #[test]
    fn context_gram_matches_scalar_kernel_eval() {
        let k = crate::ArdSquaredExponential::new(1.7, vec![0.4, 1.2, 2.5]);
        let x = Matrix::from_rows(
            &(0..7)
                .map(|i| {
                    vec![
                        i as f64 * 0.11,
                        (i * i % 5) as f64 * 0.2,
                        1.0 - i as f64 * 0.07,
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let ctx = FitContext::new(&x);
        let inv_sq: Vec<f64> = k.lengthscales().iter().map(|l| 1.0 / (l * l)).collect();
        let mut g = Matrix::zeros(1, 1);
        ctx.gram_into(&inv_sq, k.signal_variance(), &mut g);
        for i in 0..x.nrows() {
            for j in 0..x.nrows() {
                let reference = k.eval(x.row(i), x.row(j));
                assert!((g[(i, j)] - reference).abs() < 1e-12, "gram ({i},{j})");
            }
        }
    }
}
