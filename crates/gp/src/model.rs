//! The Gaussian-process regression model (explicit kernel, eq. 3/4 of the paper).

use nnbo_linalg::{Cholesky, Matrix, Standardizer};
use nnbo_nn::{Adam, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

#[cfg(test)]
use crate::fit::nll_and_grad_into;
use crate::fit::{optimize_hypers, FitContext, FitScratch};
use crate::{ArdSquaredExponential, CrossScratch, GpConfig, GpError, GpHyperParams, ScaledRows};

/// Reusable buffers of [`GpModel::predict_batch_into`]: the query matrix, the
/// cross-kernel block and its transpose/solve buffer, and the per-query
/// accumulators.  Create once (cheap, empty) and pass to every batched
/// prediction; the buffers grow to the largest batch seen and are reused
/// afterwards, so a steady-state acquisition scoring loop performs no
/// allocation in the GP prediction path.
#[derive(Debug, Clone)]
pub struct GpPredictScratch {
    /// Query rows assembled as a matrix.
    q: Matrix,
    /// Cross-kernel scratch (scaled query rows + norms).
    cross: CrossScratch,
    /// Cross-kernel block `K(Q, X)` (`Q × N`).
    k_star: Matrix,
    /// `K*ᵀ`, overwritten in place by the batched forward solve (`N × Q`).
    v: Matrix,
    /// `K* α` (per-query explained mean).
    weighted: Vec<f64>,
    /// Per-query explained variance `‖L⁻¹ k*‖²`.
    explained: Vec<f64>,
}

impl GpPredictScratch {
    /// Creates empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        GpPredictScratch {
            q: Matrix::zeros(0, 0),
            cross: CrossScratch::new(),
            k_star: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            weighted: Vec::new(),
            explained: Vec::new(),
        }
    }
}

impl Default for GpPredictScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Predictive distribution of the GP at one query point, in the original target
/// units: `y ~ N(mean, variance)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpPrediction {
    /// Predictive mean `µ(x)`.
    pub mean: f64,
    /// Predictive variance `σ²(x)` (includes the observation-noise term, as in eq. 3).
    pub variance: f64,
}

impl GpPrediction {
    /// Predictive standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// A fitted constant-mean, ARD-squared-exponential Gaussian-process regression
/// model.
///
/// Training follows section II.C of the paper: the hyper-parameters (signal
/// variance, per-dimension lengthscales, noise variance and the constant mean) are
/// found by maximising the log marginal likelihood of eq. 4 with a multi-restart
/// Adam optimizer on the analytic gradient.  Prediction follows eq. 3.
///
/// A fitted model serialises losslessly: every field — training set,
/// standardiser, hyper-parameters, cached Cholesky factor and α vector — round
/// trips through the workspace's bit-exact JSON floats, so a deserialised
/// model predicts bit-identically to the original (the checkpoint/resume
/// contract of the GP-backed baselines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpModel {
    x: Matrix,
    /// Standardised residual targets `y_std`.
    y: Vec<f64>,
    standardizer: Standardizer,
    hyper: GpHyperParams,
    kernel: ArdSquaredExponential,
    /// Scaled/centred training rows, cached at fit time so every prediction
    /// skips re-scaling the `N × D` training matrix.
    scaled_x: ScaledRows,
    chol: Cholesky,
    /// `(K + σn² I)⁻¹ (y - µ0)` — the α vector of eq. 3.
    alpha: Vec<f64>,
    /// Diagonal jitter that was needed to factor the kernel matrix (0 when the
    /// plain factorization succeeded); incremental updates must add the same
    /// amount to stay consistent with the stored factor.
    jitter: f64,
    nll: f64,
}

impl GpModel {
    /// Fits a GP to the training set `(xs, ys)`.
    ///
    /// `xs` is a slice of N points of identical dimension d (in the caller's design
    /// space — typically already normalised to the unit cube by `nnbo-core`), and
    /// `ys` the N observed scalar targets.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingSet`] for empty or ragged input,
    /// [`GpError::OptimizationFailed`] if no restart produces a finite likelihood and
    /// [`GpError::KernelFactorization`] if the final kernel matrix cannot be factored.
    pub fn fit<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &GpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        Self::fit_warm(xs, ys, config, rng, None)
    }

    /// Fits a GP, optionally warm-starting the hyper-parameter optimization
    /// from a previous fit's optimum (see the crate-level docs for the fit
    /// pipeline).
    ///
    /// With `warm = None` this is exactly [`GpModel::fit`]: cold multi-restart
    /// Adam.  With `warm = Some(h)` (dimension matching; mismatches fall back
    /// to the cold path) a single descent of [`GpConfig::warm_iters`] steps
    /// runs from `h` — the dominant cost of a refit drops from
    /// `restarts × max_iters` likelihood evaluations to `warm_iters + 1`.  The
    /// warm result is accepted unless its NLL regresses past the evaluated
    /// likelihood of the standard initial point, in which case the full cold
    /// path runs as a fallback and the better of the two is kept; `rng` is
    /// only consumed by cold restarts.
    ///
    /// # Errors
    ///
    /// Same contract as [`GpModel::fit`].
    pub fn fit_warm<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &GpConfig,
        rng: &mut R,
        warm: Option<&GpHyperParams>,
    ) -> Result<Self, GpError> {
        validate_training_set(xs, ys)?;
        let x = Matrix::from_rows(xs);
        let ctx = FitContext::new(&x);
        Self::fit_prepared(&x, &ctx, ys, config, rng, warm)
    }

    /// Fits one GP per target column over the *same* design matrix, sharing
    /// one [`FitContext`] (pairwise squared-distance tensor) across all
    /// outputs — the multi-output refit the constrained BO loop performs for
    /// the objective plus every constraint.
    ///
    /// Equivalent to [`GpModel::fit_multi_warm`] with every warm slot empty.
    ///
    /// # Errors
    ///
    /// Returns the first per-output error (same contract as [`GpModel::fit`]);
    /// either every output fits or the whole call fails.
    pub fn fit_multi<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        config: &GpConfig,
        rng: &mut R,
    ) -> Result<Vec<Self>, GpError> {
        let warm = vec![None; targets.len()];
        Self::fit_multi_warm(xs, targets, config, rng, &warm)
    }

    /// Multi-output fitting with per-output warm starts.
    ///
    /// The shared fit context is built once; each output then runs its own
    /// hyper-parameter optimization (warm-started where `warm[i]` is given,
    /// cold otherwise) with per-output Adam state, Cholesky factors and
    /// gradient buffers.  When more than one output is requested and the
    /// machine has more than one core, the per-output optimizations run on
    /// scoped threads.
    ///
    /// **Determinism:** one seed per output is drawn from `rng` up front (in
    /// target order) and output `i` is fitted with an [`StdRng`] seeded from
    /// it, so the result is independent of thread scheduling and bit-identical
    /// to calling [`GpModel::fit_warm`] per output with those derived seeds —
    /// the property tests pin this equivalence.
    ///
    /// # Errors
    ///
    /// The first per-output error, with [`GpError::InvalidTrainingSet`] when
    /// `warm.len() != targets.len()`.
    pub fn fit_multi_warm<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        config: &GpConfig,
        rng: &mut R,
        warm: &[Option<GpHyperParams>],
    ) -> Result<Vec<Self>, GpError> {
        Self::fit_multi_warm_cached(xs, targets, config, rng, warm, &mut None)
    }

    /// [`GpModel::fit_multi_warm`] with a caller-held [`FitContext`] cache.
    ///
    /// A Bayesian-optimization loop grows its design matrix append-only, so
    /// the `N × N × D` squared-distance tensor of refit `t+1` is the tensor
    /// of refit `t` plus one row/column.  Passing the same `cache` slot
    /// across refits lets the context grow incrementally
    /// ([`FitContext::update_to`], `O(N·D)` per appended point) instead of
    /// being rebuilt from scratch (`O(N²·D)`); an incrementally grown
    /// context is bit-identical to a fresh one, so the fitted models do not
    /// depend on the cache.  An empty slot (or a slot whose rows do not
    /// prefix `xs`) is (re)built in place.
    ///
    /// # Errors
    ///
    /// Same contract as [`GpModel::fit_multi_warm`].
    pub fn fit_multi_warm_cached<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        config: &GpConfig,
        rng: &mut R,
        warm: &[Option<GpHyperParams>],
        cache: &mut Option<FitContext>,
    ) -> Result<Vec<Self>, GpError> {
        if warm.len() != targets.len() {
            return Err(GpError::InvalidTrainingSet {
                details: format!(
                    "{} targets but {} warm-start slots",
                    targets.len(),
                    warm.len()
                ),
            });
        }
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        for ys in targets {
            validate_training_set(xs, ys)?;
        }
        let x = Matrix::from_rows(xs);
        match cache {
            Some(ctx) => {
                ctx.update_to(&x);
            }
            None => *cache = Some(FitContext::new(&x)),
        }
        let ctx = cache.as_ref().expect("cache slot filled above");
        let seeds: Vec<u64> = targets.iter().map(|_| rng.gen()).collect();

        let fit_one = |&(ys, seed, prev): &(&Vec<f64>, u64, &Option<GpHyperParams>)| {
            let mut output_rng = StdRng::seed_from_u64(seed);
            Self::fit_prepared(&x, ctx, ys, config, &mut output_rng, prev.as_ref())
        };
        let jobs: Vec<(&Vec<f64>, u64, &Option<GpHyperParams>)> = targets
            .iter()
            .zip(seeds.iter().zip(warm.iter()))
            .map(|(ys, (&seed, prev))| (ys, seed, prev))
            .collect();
        // One layer of core-capped parallelism on the shared worker pool:
        // each batch task owns a contiguous band of outputs (and their
        // FitScratch buffers), so the thread count and peak memory never
        // exceed the hardware even for problems with many constraints.
        let participants = nnbo_pool::WorkerPool::global().participants();
        let workers = participants.min(8).min(jobs.len());
        let results: Vec<Result<Self, GpError>> = if workers > 1 {
            let band = jobs.len().div_ceil(workers);
            let mut slots: Vec<Vec<Result<Self, GpError>>> = Vec::new();
            slots.resize_with(jobs.len().div_ceil(band), Vec::new);
            let fit_one = &fit_one;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = jobs
                .chunks(band)
                .zip(slots.iter_mut())
                .map(|(band_jobs, slot)| {
                    Box::new(move || {
                        *slot = band_jobs.iter().map(fit_one).collect();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            nnbo_pool::WorkerPool::global().run_batch(tasks);
            slots.into_iter().flatten().collect()
        } else {
            jobs.iter().map(fit_one).collect()
        };
        results.into_iter().collect()
    }

    /// The per-output fit core shared by the single- and multi-output entry
    /// points: standardise, optimize hyper-parameters against the shared
    /// context, factor the final kernel matrix.
    fn fit_prepared<R: Rng + ?Sized>(
        x: &Matrix,
        ctx: &FitContext,
        ys: &[f64],
        config: &GpConfig,
        rng: &mut R,
        warm: Option<&GpHyperParams>,
    ) -> Result<Self, GpError> {
        let (y_std, standardizer) = if config.standardize_targets {
            let (v, s) = nnbo_linalg::standardize(ys);
            (v, s)
        } else {
            (ys.to_vec(), Standardizer::identity())
        };
        let mut scratch = FitScratch::new(ctx.len(), ctx.dim());
        let (nll, hyper) = optimize_hypers(ctx, &y_std, config, rng, warm, &mut scratch)?;

        let kernel = ArdSquaredExponential::new(hyper.signal_variance(), hyper.lengthscales());
        let mut k = kernel.gram(x);
        k.add_diag(hyper.noise_variance());
        let (chol, jitter) = Cholesky::decompose_with_jitter(&k, config.jitter, 10)?;
        let residual: Vec<f64> = y_std.iter().map(|v| v - hyper.mean).collect();
        let alpha = chol.solve_vec(&residual);
        let scaled_x = kernel.prepare(x);

        Ok(GpModel {
            x: x.clone(),
            y: y_std,
            standardizer,
            hyper,
            kernel,
            scaled_x,
            chol,
            alpha,
            jitter,
            nll,
        })
    }

    /// The pre-context reference fit (scalar per-iteration Gram rebuilds and
    /// materialised `∂K/∂θ` matrices), kept — like
    /// [`nnbo_linalg::Cholesky::decompose_reference`] — so property tests and
    /// the `reproduce fit` benchmark can compare the optimized pipeline
    /// against the path it replaced on identical inputs.
    ///
    /// # Errors
    ///
    /// Same contract as [`GpModel::fit`].
    pub fn fit_reference<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &GpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        validate_training_set(xs, ys)?;
        let dim = xs[0].len();
        let x = Matrix::from_rows(xs);

        let (y_std, standardizer) = if config.standardize_targets {
            let (v, s) = nnbo_linalg::standardize(ys);
            (v, s)
        } else {
            (ys.to_vec(), Standardizer::identity())
        };

        let mut best: Option<(f64, GpHyperParams)> = None;
        for restart in 0..config.restarts.max(1) {
            let mut hyper = crate::fit::initial_hyper(dim, restart, rng);
            let mut adam = Adam::with_learning_rate(config.learning_rate);
            let mut flat = hyper.to_flat();
            for _ in 0..config.max_iters {
                hyper = GpHyperParams::from_flat(&flat, dim);
                hyper.clamp(config.min_log_noise);
                flat = hyper.to_flat();
                let Some((_nll, grad)) = nll_and_grad_reference(&x, &y_std, &hyper, config.jitter)
                else {
                    break;
                };
                adam.step(&mut flat, &grad);
            }
            hyper = GpHyperParams::from_flat(&flat, dim);
            hyper.clamp(config.min_log_noise);
            if let Some((nll, _)) = nll_and_grad_reference(&x, &y_std, &hyper, config.jitter) {
                if nll.is_finite() && best.as_ref().is_none_or(|(b, _)| nll < *b) {
                    best = Some((nll, hyper.clone()));
                }
            }
        }
        let (nll, hyper) = best.ok_or(GpError::OptimizationFailed)?;

        let kernel = ArdSquaredExponential::new(hyper.signal_variance(), hyper.lengthscales());
        let mut k = kernel.gram(&x);
        k.add_diag(hyper.noise_variance());
        let (chol, jitter) = Cholesky::decompose_with_jitter(&k, config.jitter, 10)?;
        let residual: Vec<f64> = y_std.iter().map(|v| v - hyper.mean).collect();
        let alpha = chol.solve_vec(&residual);
        let scaled_x = kernel.prepare(&x);

        Ok(GpModel {
            x,
            y: y_std,
            standardizer,
            hyper,
            kernel,
            scaled_x,
            chol,
            alpha,
            jitter,
            nll,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.nrows()
    }

    /// Returns `true` when the model has no training data (never the case for a
    /// successfully fitted model).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.x.ncols()
    }

    /// The fitted hyper-parameters (in standardised target units).
    pub fn hyper_params(&self) -> &GpHyperParams {
        &self.hyper
    }

    /// Negative log marginal likelihood achieved by the fit (standardised units).
    pub fn nll(&self) -> f64 {
        self.nll
    }

    /// Target standardiser used internally (useful for diagnostics).
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Predictive distribution at a query point, in original target units.
    ///
    /// Delegates to the batched path with a single row, so single-point and
    /// batched predictions are arithmetically identical.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn predict(&self, x: &[f64]) -> GpPrediction {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let mut out = Vec::with_capacity(1);
        let mut scratch = GpPredictScratch::new();
        self.predict_batch_into(std::slice::from_ref(&x.to_vec()), &mut out, &mut scratch);
        out.pop().expect("one query row yields one prediction")
    }

    /// Predicts a batch of points.
    ///
    /// The whole batch shares one packed-GEMM cross-kernel product `K(Q, X)`
    /// with a fused dispatched `exp` pass, one mean matvec against `α`, and
    /// one vectorised batched triangular solve for the variances — `O(QN)`
    /// memory traffic patterns instead of `Q` independent `O(N²)` dependency
    /// chains.  Each returned prediction equals the corresponding
    /// [`GpModel::predict`] result exactly.  Hot loops should prefer
    /// [`GpModel::predict_batch_into`], which reuses caller-owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if any query's dimension differs from `dim()`.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<GpPrediction> {
        let mut out = Vec::with_capacity(xs.len());
        let mut scratch = GpPredictScratch::new();
        self.predict_batch_into(xs, &mut out, &mut scratch);
        out
    }

    /// [`GpModel::predict_batch`] writing into a caller-owned output vector
    /// and reusing a caller-owned [`GpPredictScratch`], so repeated batched
    /// predictions (the acquisition scoring loop of a Bayesian-optimization
    /// run) are allocation-free once the buffers have grown to the batch
    /// size.  The predictions are exactly those of [`GpModel::predict_batch`].
    ///
    /// # Panics
    ///
    /// Panics if any query's dimension differs from `dim()`.
    pub fn predict_batch_into(
        &self,
        xs: &[Vec<f64>],
        out: &mut Vec<GpPrediction>,
        scratch: &mut GpPredictScratch,
    ) {
        out.clear();
        if xs.is_empty() {
            return;
        }
        let dim = self.dim();
        for x in xs {
            assert_eq!(x.len(), dim, "query dimension mismatch");
        }
        if scratch.q.shape() != (xs.len(), dim) {
            scratch.q = Matrix::zeros(xs.len(), dim);
        }
        for (i, x) in xs.iter().enumerate() {
            scratch.q.row_mut(i).copy_from_slice(x);
        }
        let GpPredictScratch {
            q,
            cross,
            k_star,
            v,
            weighted,
            explained,
        } = scratch;
        let n_q = q.nrows();
        // Cross-kernel block K(Q, X), then means µ0 + K* α in one pass.
        self.kernel
            .cross_with_into(q, &self.scaled_x, k_star, cross);
        weighted.clear();
        weighted.resize(n_q, 0.0);
        k_star.matvec_into(&self.alpha, weighted);
        // Variances: column norms of L⁻¹ K*ᵀ from one batched forward solve.
        k_star.transpose_into(v); // N×Q
        self.chol.solve_lower_matrix_in_place(v);
        explained.clear();
        explained.resize(n_q, 0.0);
        for row in v.rows_iter() {
            for (e, u) in explained.iter_mut().zip(row.iter()) {
                *e += u * u;
            }
        }
        let prior = self.hyper.noise_variance() + self.kernel.signal_variance();
        out.reserve(n_q);
        for (w, ex) in weighted.iter().zip(explained.iter()) {
            let mean_std = self.hyper.mean + w;
            let var_std = (prior - ex).max(1e-12);
            out.push(GpPrediction {
                mean: self.standardizer.inverse(mean_std),
                variance: self.standardizer.inverse_variance(var_std),
            });
        }
    }

    /// Incorporates one new observation in `O(N²)` by bordering the stored
    /// Cholesky factor ([`Cholesky::append_row`]) instead of refitting.
    ///
    /// The hyper-parameters, target standardiser and jitter stay frozen at
    /// their last fitted values, which is the LinEasyBO-style trade the
    /// Bayesian-optimization loop makes between hyper-parameter freshness and
    /// per-iteration cost; the stored negative log likelihood is refreshed for
    /// the extended data set under those frozen hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingSet`] for non-finite input and
    /// [`GpError::KernelFactorization`] when the bordered kernel matrix is no
    /// longer positive definite (e.g. a near-duplicate point); callers should
    /// fall back to a full refit in that case.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn append_observation(&self, x: &[f64], y: f64) -> Result<GpModel, GpError> {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(GpError::InvalidTrainingSet {
                details: "non-finite values in appended observation".to_string(),
            });
        }
        let mut row = self.kernel.cross(x, &self.x);
        row.push(self.kernel.signal_variance() + self.hyper.noise_variance() + self.jitter);
        let mut chol = self.chol.clone();
        // Jitter ladder on the bordered factorization: a clean append applies
        // zero jitter (bit-identical to the plain path), a near-duplicate
        // point escalates the new diagonal entry instead of failing outright.
        let applied = chol.append_row_with_jitter(
            &row,
            Cholesky::RECOVERY_JITTER_INITIAL,
            Cholesky::RECOVERY_JITTER_ATTEMPTS,
        )?;

        let x_mat = Matrix::vstack(&self.x, &Matrix::from_rows(&[x.to_vec()]));
        let mut scaled_x = self.scaled_x.clone();
        scaled_x.append(&self.kernel, x);
        let mut y_std = self.y.clone();
        y_std.push(self.standardizer.transform(y));
        let residual: Vec<f64> = y_std.iter().map(|v| v - self.hyper.mean).collect();
        let alpha = chol.solve_vec(&residual);
        let n = y_std.len();
        let fit_term: f64 = residual.iter().zip(alpha.iter()).map(|(r, a)| r * a).sum();
        let nll = 0.5 * (fit_term + chol.log_det() + n as f64 * (2.0 * std::f64::consts::PI).ln());

        Ok(GpModel {
            x: x_mat,
            y: y_std,
            standardizer: self.standardizer,
            hyper: self.hyper.clone(),
            kernel: self.kernel.clone(),
            scaled_x,
            chol,
            alpha,
            jitter: self.jitter.max(applied),
            nll,
        })
    }

    /// Leave-one-out style diagnostic: mean squared standardised residual on the
    /// training data (useful as a sanity metric in tests and experiments).
    pub fn training_mse(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.len() {
            let p = self.predict(self.x.row(i));
            let y = self.standardizer.inverse(self.y[i]);
            acc += (p.mean - y) * (p.mean - y);
        }
        acc / self.len() as f64
    }
}

fn validate_training_set(xs: &[Vec<f64>], ys: &[f64]) -> Result<(), GpError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(GpError::InvalidTrainingSet {
            details: "training set is empty".to_string(),
        });
    }
    if xs.len() != ys.len() {
        return Err(GpError::InvalidTrainingSet {
            details: format!("{} inputs but {} targets", xs.len(), ys.len()),
        });
    }
    let dim = xs[0].len();
    if dim == 0 {
        return Err(GpError::InvalidTrainingSet {
            details: "zero-dimensional inputs".to_string(),
        });
    }
    if xs.iter().any(|x| x.len() != dim) {
        return Err(GpError::InvalidTrainingSet {
            details: "ragged input dimensions".to_string(),
        });
    }
    if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
        return Err(GpError::InvalidTrainingSet {
            details: "non-finite values in training data".to_string(),
        });
    }
    Ok(())
}

/// Negative log marginal likelihood (eq. 4) and its gradient with respect to
/// the flat hyper-parameter vector, through the shared-context path the fit
/// pipeline uses (exposed for the finite-difference tests).
#[cfg(test)]
pub(crate) fn nll_and_grad(
    x: &Matrix,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
) -> Option<(f64, Vec<f64>)> {
    let ctx = FitContext::new(x);
    let mut scratch = FitScratch::new(x.nrows(), x.ncols());
    nll_and_grad_into(&ctx, y, hyper, jitter, &mut scratch).map(|nll| (nll, scratch.grad.clone()))
}

/// Negative log marginal likelihood (eq. 4) and its gradient, as computed by
/// the pre-context reference path: the Gram matrix is rebuilt with the
/// norm-expansion kernel and every `∂K/∂θ` is materialised as a dense matrix.
/// Kept for [`GpModel::fit_reference`] and the equivalence tests against the
/// fused shared-context evaluation.
///
/// Returns `None` when the kernel matrix cannot be factored or the likelihood is not
/// finite, which the optimizer treats as "stop this restart".
pub(crate) fn nll_and_grad_reference(
    x: &Matrix,
    y: &[f64],
    hyper: &GpHyperParams,
    jitter: f64,
) -> Option<(f64, Vec<f64>)> {
    let n = x.nrows();
    let dim = x.ncols();
    let kernel = ArdSquaredExponential::new(hyper.signal_variance(), hyper.lengthscales());
    let gram = kernel.gram(x);
    let mut k = gram.clone();
    k.add_diag(hyper.noise_variance());
    let (chol, _) = Cholesky::decompose_with_jitter(&k, jitter, 8).ok()?;

    let residual: Vec<f64> = y.iter().map(|v| v - hyper.mean).collect();
    let alpha = chol.solve_vec(&residual);
    let fit_term: f64 = residual.iter().zip(alpha.iter()).map(|(r, a)| r * a).sum();
    let log_det = chol.log_det();
    let nll = 0.5 * (fit_term + log_det + n as f64 * (2.0 * std::f64::consts::PI).ln());
    if !nll.is_finite() {
        return None;
    }

    // Gradient: dL/dθ = ½ tr((K⁻¹ - α αᵀ) ∂K/∂θ).
    let k_inv = chol.inverse();
    let mut grad = Vec::with_capacity(dim + 3);

    // Helper computing ½ Σ_ij (K⁻¹ - ααᵀ)_ij (∂K/∂θ)_ij for a dense symmetric ∂K/∂θ.
    let trace_term = |dk: &Matrix| -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                acc += (k_inv[(i, j)] - alpha[i] * alpha[j]) * dk[(i, j)];
            }
        }
        0.5 * acc
    };

    // log σf.
    grad.push(trace_term(&kernel.gram_grad_log_signal(&gram)));
    // log lengthscales.
    for d in 0..dim {
        grad.push(trace_term(&kernel.gram_grad_log_lengthscale(x, &gram, d)));
    }
    // log σn: ∂K/∂log σn = 2 σn² I.
    let noise_var = hyper.noise_variance();
    let mut acc = 0.0;
    for i in 0..n {
        acc += (k_inv[(i, i)] - alpha[i] * alpha[i]) * 2.0 * noise_var;
    }
    grad.push(0.5 * acc);
    // Mean: dL/dµ0 = -Σ α_i.
    grad.push(-alpha.iter().sum::<f64>());

    if grad.iter().any(|g| !g.is_finite()) {
        return None;
    }
    Some((nll, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_nn::finite_difference_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (3.0 * x[0]).sin() + 0.5 * x[1] * x[1])
            .collect();
        (xs, ys)
    }

    #[test]
    fn nll_gradient_matches_finite_differences() {
        let (xs, ys) = toy_data(12, 3);
        let x = Matrix::from_rows(&xs);
        let (y_std, _) = nnbo_linalg::standardize(&ys);
        let hyper = GpHyperParams {
            log_signal: 0.2,
            log_lengthscales: vec![-0.3, 0.4],
            log_noise: -2.0,
            mean: 0.1,
        };
        let (_, analytic) = nll_and_grad(&x, &y_std, &hyper, 1e-10).unwrap();
        let f = |flat: &[f64]| {
            let hp = GpHyperParams::from_flat(flat, 2);
            nll_and_grad(&x, &y_std, &hp, 1e-10).unwrap().0
        };
        let fd = finite_difference_gradient(&f, &hyper.to_flat(), 1e-5);
        for (a, b) in analytic.iter().zip(fd.iter()) {
            assert!(
                (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                "analytic {a} vs fd {b}"
            );
        }
    }

    #[test]
    fn shared_context_nll_matches_reference_path() {
        let (xs, ys) = toy_data(15, 9);
        let x = Matrix::from_rows(&xs);
        let (y_std, _) = nnbo_linalg::standardize(&ys);
        let hyper = GpHyperParams {
            log_signal: 0.4,
            log_lengthscales: vec![-0.6, 0.2],
            log_noise: -2.5,
            mean: -0.2,
        };
        let (nll_ctx, grad_ctx) = nll_and_grad(&x, &y_std, &hyper, 1e-10).unwrap();
        let (nll_ref, grad_ref) = nll_and_grad_reference(&x, &y_std, &hyper, 1e-10).unwrap();
        assert!(
            (nll_ctx - nll_ref).abs() < 1e-8 * (1.0 + nll_ref.abs()),
            "nll {nll_ctx} vs reference {nll_ref}"
        );
        for (a, b) in grad_ctx.iter().zip(grad_ref.iter()) {
            assert!(
                (a - b).abs() < 1e-7 * (1.0 + b.abs()),
                "grad {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn warm_fit_tracks_cold_fit_quality_and_skips_restarts() {
        let (xs, ys) = toy_data(30, 41);
        let config = GpConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        let cold = GpModel::fit(&xs, &ys, &config, &mut rng).unwrap();

        // One more observation, refit warm from the previous optimum.
        let mut xs2 = xs.clone();
        let mut ys2 = ys.clone();
        xs2.push(vec![0.21, 0.77]);
        ys2.push((3.0 * 0.21_f64).sin() + 0.5 * 0.77 * 0.77);
        let mut warm_rng = StdRng::seed_from_u64(43);
        let warm = GpModel::fit_warm(
            &xs2,
            &ys2,
            &config,
            &mut warm_rng,
            Some(cold.hyper_params()),
        )
        .unwrap();
        let mut cold_rng = StdRng::seed_from_u64(43);
        let cold2 = GpModel::fit(&xs2, &ys2, &config, &mut cold_rng).unwrap();
        assert!(
            warm.nll() <= cold2.nll() + 0.5 * (1.0 + cold2.nll().abs()),
            "warm NLL {} vs cold NLL {}",
            warm.nll(),
            cold2.nll()
        );
        // The accepted warm path never touches the rng (no random restarts).
        assert_eq!(
            warm_rng.gen::<u64>(),
            StdRng::seed_from_u64(43).gen::<u64>()
        );
    }

    #[test]
    fn fit_multi_matches_per_output_fits_with_derived_seeds() {
        let (xs, ys_a) = toy_data(18, 51);
        let ys_b: Vec<f64> = xs.iter().map(|x| x[0] * x[0] - x[1]).collect();
        let config = GpConfig::fast();
        let mut rng = StdRng::seed_from_u64(7);
        let models =
            GpModel::fit_multi(&xs, &[ys_a.clone(), ys_b.clone()], &config, &mut rng).unwrap();
        assert_eq!(models.len(), 2);

        // Replay the documented seed-derivation scheme.
        let mut seed_rng = StdRng::seed_from_u64(7);
        let seeds: Vec<u64> = (0..2).map(|_| seed_rng.gen()).collect();
        for (model, (ys, seed)) in models.iter().zip([ys_a, ys_b].iter().zip(seeds.iter())) {
            let mut output_rng = StdRng::seed_from_u64(*seed);
            let reference = GpModel::fit(&xs, ys, &config, &mut output_rng).unwrap();
            assert_eq!(model.hyper_params(), reference.hyper_params());
            assert_eq!(model.nll(), reference.nll());
            let q = [0.31, 0.64];
            assert_eq!(model.predict(&q).mean, reference.predict(&q).mean);
            assert_eq!(model.predict(&q).variance, reference.predict(&q).variance);
        }
    }

    #[test]
    fn fit_multi_warm_rejects_mismatched_slots_and_handles_empty() {
        let (xs, ys) = toy_data(8, 61);
        let mut rng = StdRng::seed_from_u64(1);
        let err =
            GpModel::fit_multi_warm(&xs, &[ys], &GpConfig::fast(), &mut rng, &[]).unwrap_err();
        assert!(matches!(err, GpError::InvalidTrainingSet { .. }));
        let none: Vec<Vec<f64>> = Vec::new();
        assert!(GpModel::fit_multi(&xs, &none, &GpConfig::fast(), &mut rng)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fit_interpolates_training_data() {
        let (xs, ys) = toy_data(25, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let model = GpModel::fit(&xs, &ys, &GpConfig::default(), &mut rng).unwrap();
        assert!(
            model.training_mse() < 1e-2,
            "training MSE {}",
            model.training_mse()
        );
    }

    #[test]
    fn prediction_is_accurate_between_points() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).cos()).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let model = GpModel::fit(&xs, &ys, &GpConfig::default(), &mut rng).unwrap();
        for &t in &[0.15, 0.35, 0.62, 0.81] {
            let p = model.predict(&[t]);
            assert!(
                (p.mean - (4.0 * t).cos()).abs() < 0.05,
                "bad prediction at {t}"
            );
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![0.3 + 0.04 * i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        let near = model.predict(&[0.45]);
        let far = model.predict(&[3.0]);
        assert!(far.variance > near.variance * 5.0);
    }

    #[test]
    fn invalid_training_sets_are_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let err = GpModel::fit(&[], &[], &GpConfig::fast(), &mut rng).unwrap_err();
        assert!(matches!(err, GpError::InvalidTrainingSet { .. }));
        let err = GpModel::fit(&[vec![1.0]], &[1.0, 2.0], &GpConfig::fast(), &mut rng).unwrap_err();
        assert!(matches!(err, GpError::InvalidTrainingSet { .. }));
        let err = GpModel::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[1.0, 2.0],
            &GpConfig::fast(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, GpError::InvalidTrainingSet { .. }));
        let err = GpModel::fit(&[vec![f64::NAN]], &[1.0], &GpConfig::fast(), &mut rng).unwrap_err();
        assert!(matches!(err, GpError::InvalidTrainingSet { .. }));
    }

    #[test]
    fn constant_targets_do_not_break_fitting() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ys = vec![2.5; 8];
        let mut rng = StdRng::seed_from_u64(5);
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        let p = model.predict(&[0.5]);
        assert!((p.mean - 2.5).abs() < 0.2);
    }

    #[test]
    fn fitted_model_round_trips_through_json_bit_exactly() {
        let (xs, ys) = toy_data(18, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        let restored: GpModel = serde::from_json_str(&serde::to_json_string(&model)).unwrap();
        assert_eq!(restored.nll(), model.nll());
        assert_eq!(
            restored.hyper_params().lengthscales(),
            model.hyper_params().lengthscales()
        );
        for q in [[0.1, 0.9], [0.5, 0.5], [0.83, 0.07], [2.0, -1.0]] {
            let (a, b) = (model.predict(&q), restored.predict(&q));
            assert_eq!(a.mean, b.mean, "mean drifted through JSON at {q:?}");
            assert_eq!(a.variance, b.variance, "variance drifted at {q:?}");
        }
        // The restored model keeps absorbing observations identically.
        let orig = model.append_observation(&[0.4, 0.6], 0.7).unwrap();
        let back = restored.append_observation(&[0.4, 0.6], 0.7).unwrap();
        let (a, b) = (orig.predict(&[0.41, 0.59]), back.predict(&[0.41, 0.59]));
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.variance, b.variance);
    }

    #[test]
    fn predict_batch_matches_per_point_predict_exactly() {
        let (xs, ys) = toy_data(30, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0])
            .collect();
        let batch = model.predict_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(batch.iter()) {
            let single = model.predict(q);
            assert_eq!(single.mean, b.mean, "mean mismatch at {q:?}");
            assert_eq!(single.variance, b.variance, "variance mismatch at {q:?}");
        }
        assert!(model.predict_batch(&[]).is_empty());
    }

    #[test]
    fn append_observation_matches_frozen_hyper_refit() {
        let (xs, ys) = toy_data(20, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let model = GpModel::fit(&xs, &ys, &GpConfig::fast(), &mut rng).unwrap();
        let x_new = vec![0.42_f64, 0.58];
        let y_new = (3.0 * x_new[0]).sin() + 0.5 * x_new[1] * x_new[1];
        let updated = model.append_observation(&x_new, y_new).unwrap();
        assert_eq!(updated.len(), model.len() + 1);
        assert_eq!(updated.hyper_params(), model.hyper_params());
        // The updated model interpolates the appended point like a (frozen
        // hyper-parameter) refit would: the prediction at x_new moves towards
        // y_new and its uncertainty collapses towards the noise floor.
        let before = model.predict(&x_new);
        let after = updated.predict(&x_new);
        assert!((after.mean - y_new).abs() <= (before.mean - y_new).abs() + 1e-9);
        assert!(after.variance <= before.variance + 1e-12);
        // Rejects nonsense input.
        assert!(model.append_observation(&[f64::NAN, 0.0], 1.0).is_err());
    }

    #[test]
    fn prediction_units_are_restored_after_standardisation() {
        // Targets with a large offset and scale: predictions must come back in the
        // original units, not the standardised ones.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1000.0 + 50.0 * x[0]).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let model = GpModel::fit(&xs, &ys, &GpConfig::default(), &mut rng).unwrap();
        let p = model.predict(&[0.5]);
        assert!((p.mean - 1025.0).abs() < 5.0);
    }
}
