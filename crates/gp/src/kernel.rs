//! The ARD squared-exponential (Gaussian) kernel.

use nnbo_linalg::{weighted_squared_distance, Matrix};
use serde::{Deserialize, Serialize};

/// Automatic-relevance-determination squared-exponential kernel,
/// `k(x1, x2) = σf² exp(-½ Σ_d (x1_d - x2_d)² / l_d²)`.
///
/// This is the kernel used by the WEIBO baseline of the paper (section II.C), with
/// one lengthscale per design variable.
///
/// # Example
///
/// ```
/// use nnbo_gp::ArdSquaredExponential;
///
/// let k = ArdSquaredExponential::new(1.0, vec![0.5, 2.0]);
/// let same = k.eval(&[0.0, 0.0], &[0.0, 0.0]);
/// assert!((same - 1.0).abs() < 1e-12);
/// assert!(k.eval(&[0.0, 0.0], &[1.0, 0.0]) < same);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArdSquaredExponential {
    signal_variance: f64,
    lengthscales: Vec<f64>,
    /// Cached `1 / l_d²` weights.
    inv_sq: Vec<f64>,
}

impl ArdSquaredExponential {
    /// Creates the kernel from a signal *variance* `σf²` and per-dimension
    /// lengthscales.
    ///
    /// # Panics
    ///
    /// Panics if `signal_variance` or any lengthscale is not strictly positive.
    pub fn new(signal_variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(signal_variance > 0.0, "signal variance must be positive");
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "lengthscales must be positive"
        );
        let inv_sq = lengthscales.iter().map(|l| 1.0 / (l * l)).collect();
        ArdSquaredExponential {
            signal_variance,
            lengthscales,
            inv_sq,
        }
    }

    /// Isotropic kernel: the same lengthscale for all `dim` dimensions.
    pub fn isotropic(signal_variance: f64, lengthscale: f64, dim: usize) -> Self {
        Self::new(signal_variance, vec![lengthscale; dim])
    }

    /// The signal variance `σf²`.
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// The per-dimension lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Evaluates the kernel between two points.
    ///
    /// # Panics
    ///
    /// Panics if the point dimensions do not match the kernel dimension.
    pub fn eval(&self, x1: &[f64], x2: &[f64]) -> f64 {
        let d2 = weighted_squared_distance(x1, x2, &self.inv_sq);
        self.signal_variance * (-0.5 * d2).exp()
    }

    /// Kernel (Gram) matrix of a set of points given as rows of `x`.
    pub fn gram(&self, x: &Matrix) -> Matrix {
        let n = x.nrows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            k[(i, i)] = self.signal_variance;
            for j in (i + 1)..n {
                let v = self.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Cross-covariance vector `k(x*, X)` between one point and the training rows.
    pub fn cross(&self, x_star: &[f64], x: &Matrix) -> Vec<f64> {
        (0..x.nrows()).map(|i| self.eval(x_star, x.row(i))).collect()
    }

    /// Partial derivative of the Gram matrix with respect to `log σf` (returns the
    /// full matrix).
    pub fn gram_grad_log_signal(&self, gram: &Matrix) -> Matrix {
        // k = σf² e^{-...}; ∂k/∂ log σf = 2k.
        gram.map(|v| 2.0 * v)
    }

    /// Partial derivative of the Gram matrix with respect to `log l_d` for
    /// dimension `d`.
    pub fn gram_grad_log_lengthscale(&self, x: &Matrix, gram: &Matrix, d: usize) -> Matrix {
        // ∂k/∂ log l_d = k · (x1_d - x2_d)² / l_d².
        let n = x.nrows();
        let w = self.inv_sq[d];
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let diff = x[(i, d)] - x[(j, d)];
                let v = gram[(i, j)] * diff * diff * w;
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_one_at_zero_distance_and_decays() {
        let k = ArdSquaredExponential::isotropic(2.0, 1.0, 3);
        let x = [0.1, 0.2, 0.3];
        assert!((k.eval(&x, &x) - 2.0).abs() < 1e-12);
        let far = [5.0, 5.0, 5.0];
        assert!(k.eval(&x, &far) < 1e-6);
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = ArdSquaredExponential::new(1.5, vec![0.7, 1.3]);
        let a = [0.2, -0.4];
        let b = [1.0, 0.6];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn lengthscale_controls_decay_rate() {
        let short = ArdSquaredExponential::isotropic(1.0, 0.1, 1);
        let long = ArdSquaredExponential::isotropic(1.0, 10.0, 1);
        let a = [0.0];
        let b = [0.5];
        assert!(short.eval(&a, &b) < long.eval(&a, &b));
    }

    #[test]
    fn gram_matrix_is_symmetric_with_signal_variance_diagonal() {
        let k = ArdSquaredExponential::new(3.0, vec![1.0, 2.0]);
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![-1.0, 0.5]]);
        let g = k.gram(&x);
        assert!(g.is_symmetric(1e-14));
        for i in 0..3 {
            assert!((g[(i, i)] - 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn gram_gradients_match_finite_differences() {
        let x = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.4], vec![-0.5, 0.2]]);
        let sf2 = 1.7;
        let ls = vec![0.6, 1.4];
        let k = ArdSquaredExponential::new(sf2, ls.clone());
        let g = k.gram(&x);

        let h = 1e-6;
        // log σf direction.
        let kp = ArdSquaredExponential::new((sf2.ln() / 2.0 + h).exp().powi(2), ls.clone());
        let km = ArdSquaredExponential::new((sf2.ln() / 2.0 - h).exp().powi(2), ls.clone());
        let fd = &(&kp.gram(&x) - &km.gram(&x)) * (1.0 / (2.0 * h));
        let analytic = k.gram_grad_log_signal(&g);
        assert!((&fd - &analytic).max_abs() < 1e-5);

        // log l_0 direction.
        let mut lsp = ls.clone();
        lsp[0] = (ls[0].ln() + h).exp();
        let mut lsm = ls.clone();
        lsm[0] = (ls[0].ln() - h).exp();
        let fd0 = &(&ArdSquaredExponential::new(sf2, lsp).gram(&x)
            - &ArdSquaredExponential::new(sf2, lsm).gram(&x))
            * (1.0 / (2.0 * h));
        let analytic0 = k.gram_grad_log_lengthscale(&x, &g, 0);
        assert!((&fd0 - &analytic0).max_abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_lengthscale_is_rejected() {
        let _ = ArdSquaredExponential::new(1.0, vec![0.0]);
    }
}
