//! The ARD squared-exponential (Gaussian) kernel.

use nnbo_linalg::{weighted_squared_distance, Matrix};
use serde::{Deserialize, Serialize};

/// Automatic-relevance-determination squared-exponential kernel,
/// `k(x1, x2) = σf² exp(-½ Σ_d (x1_d - x2_d)² / l_d²)`.
///
/// This is the kernel used by the WEIBO baseline of the paper (section II.C), with
/// one lengthscale per design variable.
///
/// # Example
///
/// ```
/// use nnbo_gp::ArdSquaredExponential;
///
/// let k = ArdSquaredExponential::new(1.0, vec![0.5, 2.0]);
/// let same = k.eval(&[0.0, 0.0], &[0.0, 0.0]);
/// assert!((same - 1.0).abs() < 1e-12);
/// assert!(k.eval(&[0.0, 0.0], &[1.0, 0.0]) < same);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArdSquaredExponential {
    signal_variance: f64,
    lengthscales: Vec<f64>,
    /// Cached `1 / l_d²` weights.
    inv_sq: Vec<f64>,
}

impl ArdSquaredExponential {
    /// Creates the kernel from a signal *variance* `σf²` and per-dimension
    /// lengthscales.
    ///
    /// # Panics
    ///
    /// Panics if `signal_variance` or any lengthscale is not strictly positive.
    pub fn new(signal_variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(signal_variance > 0.0, "signal variance must be positive");
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "lengthscales must be positive"
        );
        let inv_sq = lengthscales.iter().map(|l| 1.0 / (l * l)).collect();
        ArdSquaredExponential {
            signal_variance,
            lengthscales,
            inv_sq,
        }
    }

    /// Isotropic kernel: the same lengthscale for all `dim` dimensions.
    pub fn isotropic(signal_variance: f64, lengthscale: f64, dim: usize) -> Self {
        Self::new(signal_variance, vec![lengthscale; dim])
    }

    /// The signal variance `σf²`.
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// The per-dimension lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Evaluates the kernel between two points.
    ///
    /// # Panics
    ///
    /// Panics if the point dimensions do not match the kernel dimension.
    pub fn eval(&self, x1: &[f64], x2: &[f64]) -> f64 {
        let d2 = weighted_squared_distance(x1, x2, &self.inv_sq);
        self.signal_variance * (-0.5 * d2).exp()
    }

    /// Rows of `x` scaled by the inverse lengthscales and shifted by `center`
    /// (in scaled coordinates), so that the weighted squared distance becomes
    /// a plain squared distance of the transformed rows.
    ///
    /// The shift is distance-preserving; centring on the training set keeps
    /// the row norms small so the norm expansion used by
    /// [`ArdSquaredExponential::gram`] does not lose precision when the raw
    /// coordinates carry a large common offset (e.g. frequencies in Hz).
    fn scaled_rows(&self, x: &Matrix, center: &[f64]) -> Matrix {
        let mut s = Matrix::zeros(0, 0);
        self.scaled_rows_into(x, center, &mut s);
        s
    }

    /// [`ArdSquaredExponential::scaled_rows`] into a caller-provided buffer
    /// (reusing its allocation when the shape matches).
    fn scaled_rows_into(&self, x: &Matrix, center: &[f64], out: &mut Matrix) {
        out.clone_from(x);
        let dim = self.inv_sq.len();
        for row in 0..out.nrows() {
            for ((v, &w), &c) in out.row_mut(row)[..dim]
                .iter_mut()
                .zip(self.inv_sq.iter())
                .zip(center.iter())
            {
                *v = *v * w.sqrt() - c;
            }
        }
    }

    /// Column means of `x` in scaled coordinates — the centring shift shared
    /// by a training set and every query scored against it.
    fn scaled_center(&self, x: &Matrix) -> Vec<f64> {
        let dim = self.inv_sq.len();
        let mut center = vec![0.0; dim];
        if x.nrows() == 0 {
            return center;
        }
        for row in x.rows_iter() {
            for ((c, &v), &w) in center.iter_mut().zip(row.iter()).zip(self.inv_sq.iter()) {
                *c += v * w.sqrt();
            }
        }
        let inv_n = 1.0 / x.nrows() as f64;
        for c in &mut center {
            *c *= inv_n;
        }
        center
    }

    /// Precomputes the scaled/centred representation of a fixed point set so
    /// repeated cross-covariance products against it skip the per-call
    /// rescaling (see [`ArdSquaredExponential::cross_with`]).
    pub fn prepare(&self, x: &Matrix) -> ScaledRows {
        let center = self.scaled_center(x);
        let rows = self.scaled_rows(x, &center);
        let norms: Vec<f64> = rows.rows_iter().map(row_norm_sq).collect();
        ScaledRows {
            rows,
            norms,
            center,
        }
    }

    /// Kernel (Gram) matrix of a set of points given as rows of `x`.
    ///
    /// Computed through the norm expansion
    /// `‖x'ᵢ − x'ⱼ‖² = ‖x'ᵢ‖² + ‖x'ⱼ‖² − 2 x'ᵢ·x'ⱼ` on lengthscale-scaled,
    /// mean-centred rows, which turns the whole matrix into one blocked
    /// (multi-threaded for large `N`) `X'X'ᵀ` product instead of `N²/2` scalar
    /// kernel evaluations.  The result is exactly symmetric with `σf²` on the
    /// diagonal, like the scalar-loop reference it replaces.
    pub fn gram(&self, x: &Matrix) -> Matrix {
        let center = self.scaled_center(x);
        let scaled = self.scaled_rows(x, &center);
        let mut g = scaled.matmul_transpose(&scaled);
        let n = g.nrows();
        let norms = g.diag();
        // The fused exp pass clamps d² at zero (cancellation can take it a
        // hair below), which also pins the diagonal at exactly σf².
        for i in 0..n {
            let qn = norms[i];
            nnbo_linalg::sq_exp_apply(g.row_mut(i), &norms, qn, self.signal_variance);
        }
        g
    }

    /// Cross-covariance matrix `K(Q, X)` between query rows `q` and training
    /// rows `x` (shape `q.nrows() × x.nrows()`), via the same norm expansion
    /// and blocked product as [`ArdSquaredExponential::gram`].
    ///
    /// When the same `x` is queried repeatedly, use
    /// [`ArdSquaredExponential::prepare`] with
    /// [`ArdSquaredExponential::cross_with`] to skip the per-call rescaling of
    /// the training rows.
    ///
    /// # Panics
    ///
    /// Panics if the column counts of `q` and `x` differ.
    pub fn cross_matrix(&self, q: &Matrix, x: &Matrix) -> Matrix {
        assert_eq!(q.ncols(), x.ncols(), "cross_matrix dimension mismatch");
        self.cross_with(q, &self.prepare(x))
    }

    /// Cross-covariance matrix `K(Q, X)` against a point set prepared with
    /// [`ArdSquaredExponential::prepare`].
    ///
    /// # Panics
    ///
    /// Panics if `q`'s dimension differs from the kernel dimension.
    pub fn cross_with(&self, q: &Matrix, x: &ScaledRows) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = CrossScratch::new();
        self.cross_with_into(q, x, &mut out, &mut scratch);
        out
    }

    /// [`ArdSquaredExponential::cross_with`] into caller-provided buffers, so
    /// a hot scoring loop performs no allocation: the query rows are scaled
    /// into `scratch`, the dot products come from one packed-GEMM
    /// `Q'·X'ᵀ` product ([`Matrix::matmul_transpose_into`], which routes
    /// through the AVX2+FMA micro-kernels when the runtime dispatch selects
    /// them), and the norm expansion plus `exp` run as one fused dispatched
    /// elementwise pass per row ([`nnbo_linalg::sq_exp_apply`]).  `out` and
    /// the scratch buffers are resized as needed and reused afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `q`'s dimension differs from the kernel dimension.
    pub fn cross_with_into(
        &self,
        q: &Matrix,
        x: &ScaledRows,
        out: &mut Matrix,
        scratch: &mut CrossScratch,
    ) {
        assert_eq!(q.ncols(), self.dim(), "cross_with dimension mismatch");
        self.scaled_rows_into(q, &x.center, &mut scratch.qs);
        scratch.q_norms.clear();
        scratch
            .q_norms
            .extend(scratch.qs.rows_iter().map(row_norm_sq));
        if out.shape() != (q.nrows(), x.rows.nrows()) {
            *out = Matrix::zeros(q.nrows(), x.rows.nrows());
        }
        scratch.qs.matmul_transpose_into(&x.rows, out);
        for i in 0..out.nrows() {
            let qn = scratch.q_norms[i];
            nnbo_linalg::sq_exp_apply(out.row_mut(i), &x.norms, qn, self.signal_variance);
        }
    }

    /// Cross-covariance vector `k(x*, X)` between one point and the training rows.
    pub fn cross(&self, x_star: &[f64], x: &Matrix) -> Vec<f64> {
        (0..x.nrows())
            .map(|i| self.eval(x_star, x.row(i)))
            .collect()
    }

    /// Partial derivative of the Gram matrix with respect to `log σf` (returns the
    /// full matrix).
    pub fn gram_grad_log_signal(&self, gram: &Matrix) -> Matrix {
        // k = σf² e^{-...}; ∂k/∂ log σf = 2k.
        gram.map(|v| 2.0 * v)
    }

    /// Partial derivative of the Gram matrix with respect to `log l_d` for
    /// dimension `d`.
    pub fn gram_grad_log_lengthscale(&self, x: &Matrix, gram: &Matrix, d: usize) -> Matrix {
        // ∂k/∂ log l_d = k · (x1_d - x2_d)² / l_d².
        let n = x.nrows();
        let w = self.inv_sq[d];
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let diff = x[(i, d)] - x[(j, d)];
                let v = gram[(i, j)] * diff * diff * w;
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
        out
    }
}

/// Lengthscale-scaled, mean-centred copy of a fixed point set plus its row
/// norms — the per-query-invariant half of the cross-covariance computation,
/// built once by [`ArdSquaredExponential::prepare`] and reused by every
/// [`ArdSquaredExponential::cross_with`] call (e.g. each batched prediction of
/// a fitted GP).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaledRows {
    rows: Matrix,
    norms: Vec<f64>,
    center: Vec<f64>,
}

impl ScaledRows {
    /// Number of prepared points.
    pub fn len(&self) -> usize {
        self.rows.nrows()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one point (raw coordinates) to the prepared set, scaling and
    /// centring it with the set's frozen shift — the cache maintenance that
    /// accompanies an incremental `append_observation`.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s dimension differs from the kernel dimension.
    pub fn append(&mut self, kernel: &ArdSquaredExponential, x: &[f64]) {
        assert_eq!(x.len(), kernel.dim(), "append dimension mismatch");
        let row: Vec<f64> = x
            .iter()
            .zip(kernel.inv_sq.iter())
            .zip(self.center.iter())
            .map(|((&v, &w), &c)| v * w.sqrt() - c)
            .collect();
        self.norms.push(row_norm_sq(&row));
        self.rows = Matrix::vstack(&self.rows, &Matrix::from_rows(std::slice::from_ref(&row)));
    }
}

/// Reusable buffers of a cross-kernel evaluation
/// ([`ArdSquaredExponential::cross_with_into`]): the scaled query rows and
/// their squared norms.  Create once, pass to every call.
#[derive(Debug, Clone)]
pub struct CrossScratch {
    qs: Matrix,
    q_norms: Vec<f64>,
}

impl CrossScratch {
    /// Creates empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        CrossScratch {
            qs: Matrix::zeros(0, 0),
            q_norms: Vec::new(),
        }
    }
}

impl Default for CrossScratch {
    fn default() -> Self {
        Self::new()
    }
}

fn row_norm_sq(row: &[f64]) -> f64 {
    row.iter().map(|v| v * v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_and_cross_matrix_match_scalar_eval() {
        let k = ArdSquaredExponential::new(1.7, vec![0.4, 1.2, 2.5]);
        let x = Matrix::from_rows(
            &(0..9)
                .map(|i| {
                    vec![
                        i as f64 * 0.11,
                        (i * i % 5) as f64 * 0.2,
                        1.0 - i as f64 * 0.07,
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let q = Matrix::from_rows(&[vec![0.3, 0.1, 0.9], vec![0.0, 0.8, 0.2]]);
        let g = k.gram(&x);
        for i in 0..x.nrows() {
            for j in 0..x.nrows() {
                let reference = k.eval(x.row(i), x.row(j));
                assert!((g[(i, j)] - reference).abs() < 1e-10, "gram ({i},{j})");
            }
        }
        let c = k.cross_matrix(&q, &x);
        for i in 0..q.nrows() {
            for j in 0..x.nrows() {
                let reference = k.eval(q.row(i), x.row(j));
                assert!((c[(i, j)] - reference).abs() < 1e-10, "cross ({i},{j})");
            }
        }
    }

    #[test]
    fn kernel_is_one_at_zero_distance_and_decays() {
        let k = ArdSquaredExponential::isotropic(2.0, 1.0, 3);
        let x = [0.1, 0.2, 0.3];
        assert!((k.eval(&x, &x) - 2.0).abs() < 1e-12);
        let far = [5.0, 5.0, 5.0];
        assert!(k.eval(&x, &far) < 1e-6);
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = ArdSquaredExponential::new(1.5, vec![0.7, 1.3]);
        let a = [0.2, -0.4];
        let b = [1.0, 0.6];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn lengthscale_controls_decay_rate() {
        let short = ArdSquaredExponential::isotropic(1.0, 0.1, 1);
        let long = ArdSquaredExponential::isotropic(1.0, 10.0, 1);
        let a = [0.0];
        let b = [0.5];
        assert!(short.eval(&a, &b) < long.eval(&a, &b));
    }

    #[test]
    fn gram_matrix_is_symmetric_with_signal_variance_diagonal() {
        let k = ArdSquaredExponential::new(3.0, vec![1.0, 2.0]);
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![-1.0, 0.5]]);
        let g = k.gram(&x);
        assert!(g.is_symmetric(1e-14));
        for i in 0..3 {
            assert!((g[(i, i)] - 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn gram_gradients_match_finite_differences() {
        let x = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.4], vec![-0.5, 0.2]]);
        let sf2 = 1.7;
        let ls = vec![0.6, 1.4];
        let k = ArdSquaredExponential::new(sf2, ls.clone());
        let g = k.gram(&x);

        let h = 1e-6;
        // log σf direction.
        let kp = ArdSquaredExponential::new((sf2.ln() / 2.0 + h).exp().powi(2), ls.clone());
        let km = ArdSquaredExponential::new((sf2.ln() / 2.0 - h).exp().powi(2), ls.clone());
        let fd = &(&kp.gram(&x) - &km.gram(&x)) * (1.0 / (2.0 * h));
        let analytic = k.gram_grad_log_signal(&g);
        assert!((&fd - &analytic).max_abs() < 1e-5);

        // log l_0 direction.
        let mut lsp = ls.clone();
        lsp[0] = (ls[0].ln() + h).exp();
        let mut lsm = ls.clone();
        lsm[0] = (ls[0].ln() - h).exp();
        let fd0 = &(&ArdSquaredExponential::new(sf2, lsp).gram(&x)
            - &ArdSquaredExponential::new(sf2, lsm).gram(&x))
            * (1.0 / (2.0 * h));
        let analytic0 = k.gram_grad_log_lengthscale(&x, &g, 0);
        assert!((&fd0 - &analytic0).max_abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_lengthscale_is_rejected() {
        let _ = ArdSquaredExponential::new(1.0, vec![0.0]);
    }
}
