//! Classical Gaussian-process regression for the `nnbo` workspace.
//!
//! This crate implements the *explicit-kernel* GP of the paper's background section
//! (section II.C): a constant mean, an ARD squared-exponential (Gaussian) kernel
//!
//! ```text
//! k(xi, xj) = σf² · exp(-½ (xi - xj)ᵀ Λ⁻¹ (xi - xj)),   Λ = diag(l1², …, ld²)
//! ```
//!
//! additive Gaussian observation noise, hyper-parameter fitting by maximising the
//! log marginal likelihood (eq. 4), and the predictive mean/variance of eq. 3.
//!
//! It is the surrogate used by the WEIBO and GASPAD baselines that the paper
//! compares against; the paper's own neural-network GP lives in `nnbo-core`.
//!
//! Training is O(N³) and prediction O(N²) per point, exactly the costs the paper's
//! complexity analysis (section III.D) attributes to the traditional model — the
//! scaling benchmark in `nnbo-bench` measures this contrast directly.
//!
//! # The fit pipeline: cold, warm, and multi-output
//!
//! Fitting maximises the log marginal likelihood with Adam; how the search is
//! seeded and what is shared between searches is layered:
//!
//! * **Cold fit** ([`GpModel::fit`]) — multi-restart descent: the standard
//!   initial point plus [`GpConfig::restarts`]` − 1` random initialisations,
//!   [`GpConfig::max_iters`] Adam steps each, best NLL wins.  This is the
//!   right tool for the *first* fit, when nothing is known about the surface.
//! * **Warm refit** ([`GpModel::fit_warm`]) — inside a Bayesian-optimization
//!   loop the training set grows by one point per refit, so the previous
//!   optimum is an excellent initialisation: a single descent of *at most*
//!   [`GpConfig::warm_iters`] steps replaces the whole restart schedule, and
//!   stops early once the gradient RMS drops to
//!   [`GpConfig::warm_grad_tol`] (a warm start already at the optimum has
//!   nothing to descend).  The result is accepted unless its NLL regresses
//!   past the evaluated likelihood of the standard initial point; then the
//!   cold path runs as a fallback and the better fit is kept.
//! * **Shared fit context** — every likelihood evaluation needs the pairwise
//!   per-dimension squared differences of the training rows, which do not
//!   depend on the hyper-parameters.  One refit computes that `N × N × D`
//!   tensor ([`FitContext`]) once; each Adam iteration rebuilds the Gram
//!   matrix by a weighted reduction over it and accumulates all lengthscale
//!   gradients in one fused pass over `(K⁻¹ − ααᵀ) ∘ K`, into buffers
//!   allocated once per output.  Across refits the tensor can grow
//!   *incrementally*: a BO history is append-only, so
//!   [`FitContext::update_to`] adds one `O(N·D)` row/column per new
//!   observation instead of rebuilding (`GpModel::fit_multi_warm_cached`
//!   exposes the cache slot; results are bit-identical either way).
//! * **Symmetric inverse** — the dominant per-iteration cost is the dense
//!   `(K + σn²I)⁻¹` the gradient traces against.  It is computed
//!   dpotri-style ([`nnbo_linalg::Cholesky::symmetric_inverse_into`]:
//!   triangular inverse, then `WᵀW` on the lower triangle) and the fused
//!   trace pass mirrors that triangle (off-diagonal terms doubled) — about
//!   half the work of the dense two-sweep inverse it replaced, which
//!   survives as [`InverseStrategy::DenseSweeps`] for the
//!   `reproduce fit` comparison and the equivalence property tests.
//! * **Multi-output fit** ([`GpModel::fit_multi`] /
//!   [`GpModel::fit_multi_warm`]) — the constrained BO loop models the
//!   objective and every constraint over the *same* designs, so the context
//!   is shared across all outputs and the per-output optimizations (own Adam
//!   state, Cholesky factors, scratch) run on scoped threads.  Per-output
//!   seeds are drawn up front, making the result independent of thread
//!   scheduling and bit-identical to per-output [`GpModel::fit_warm`] calls
//!   with the derived seeds.
//!
//! The pre-context reference implementation survives as
//! [`GpModel::fit_reference`] so `reproduce fit` can keep measuring the
//! old-vs-new contrast on identical inputs.
//!
//! # The prediction path: packed GEMM + fused `exp`, allocation-free
//!
//! Batched prediction ([`GpModel::predict_batch`]) evaluates the
//! cross-kernel block `K(Q, X)` by the norm expansion
//! `‖q' − x'‖² = ‖q'‖² + ‖x'‖² − 2 q'·x'` over lengthscale-scaled rows: the
//! dot products come from one `Q'·X'ᵀ` product that routes through the
//! packed AVX2+FMA micro-kernel engine of `nnbo-linalg` when the runtime
//! dispatch selects it, and the norm expansion plus `exp` run as one fused
//! dispatched elementwise pass per row ([`nnbo_linalg::sq_exp_apply`]: a
//! ≲ 2 ulp polynomial `exp` on the SIMD path, the exact scalar `f64::exp`
//! loop on the portable path).  The same fused pass builds the Gram matrix
//! of the final fit factorization.  Means then come from one matvec against
//! `α` and variances from one in-place batched triangular solve.
//!
//! Hot scoring loops use the `_into` variants —
//! [`GpModel::predict_batch_into`] with a caller-owned [`GpPredictScratch`]
//! (and, one level down, [`ArdSquaredExponential::cross_with_into`] with a
//! [`CrossScratch`]) — so once the buffers have grown to the candidate-pool
//! size, an acquisition scoring round performs no allocation in the GP
//! prediction path.  `reproduce predict` measures the packed-vs-portable
//! and allocating-vs-`_into` contrasts (`BENCH_predict.json`).
//!
//! # When refits happen
//!
//! The Bayesian-optimization loop in `nnbo-core` decides *when* the full
//! fit pipeline above runs at all (`RefitPolicy`): between full fits it
//! grows the model by [`GpModel::append_observation`] — a bordered-Cholesky
//! update that keeps the hyper-parameters frozen and *refreshes the stored
//! NLL* for the extended data, which is exactly the drift signal the
//! adaptive `NllDrift` policy thresholds to decide that the frozen
//! hyper-parameters have gone stale and a warm refit is due.
//!
//! # Numerical recovery: the jitter ladder
//!
//! Near-duplicate designs late in a BO run can push the Gram matrix to the
//! edge of positive definiteness.  Every factorization on the fit and append
//! paths — the final fit Cholesky and the bordered-Cholesky row append —
//! recovers from a failed factorization by retrying under a geometric nugget
//! ladder before surfacing a [`GpError`]: the fit Cholesky escalates from the
//! configured [`GpConfig::jitter`] (`nnbo_linalg::Cholesky::decompose_with_jitter`),
//! and the append path retries on the canonical recovery ladder
//! (`append_row_with_jitter`, `1e-10 → 1e-4`).  A clean factorization applies
//! zero extra jitter, so healthy fits are bit-identical to the unguarded
//! path; when the ladder does engage, the applied nugget is folded into the
//! model's stored jitter so subsequent predictions stay consistent with the
//! factor actually used.
//!
//! # Example
//!
//! ```
//! use nnbo_gp::{GpConfig, GpModel};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nnbo_gp::GpError> {
//! // Noisy observations of y = sin(3x).
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = GpModel::fit(&xs, &ys, &GpConfig::default(), &mut rng)?;
//! let p = model.predict(&[0.5]);
//! assert!((p.mean - (1.5_f64).sin()).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod fit;
mod hyper;
mod kernel;
mod model;

pub use error::GpError;
pub use fit::{nll_and_grad_with, FitContext, FitScratch, InverseStrategy};
pub use hyper::{GpConfig, GpHyperParams};
pub use kernel::{ArdSquaredExponential, CrossScratch, ScaledRows};
pub use model::{GpModel, GpPredictScratch, GpPrediction};
