//! Classical Gaussian-process regression for the `nnbo` workspace.
//!
//! This crate implements the *explicit-kernel* GP of the paper's background section
//! (section II.C): a constant mean, an ARD squared-exponential (Gaussian) kernel
//!
//! ```text
//! k(xi, xj) = σf² · exp(-½ (xi - xj)ᵀ Λ⁻¹ (xi - xj)),   Λ = diag(l1², …, ld²)
//! ```
//!
//! additive Gaussian observation noise, hyper-parameter fitting by maximising the
//! log marginal likelihood (eq. 4), and the predictive mean/variance of eq. 3.
//!
//! It is the surrogate used by the WEIBO and GASPAD baselines that the paper
//! compares against; the paper's own neural-network GP lives in `nnbo-core`.
//!
//! Training is O(N³) and prediction O(N²) per point, exactly the costs the paper's
//! complexity analysis (section III.D) attributes to the traditional model — the
//! scaling benchmark in `nnbo-bench` measures this contrast directly.
//!
//! # Example
//!
//! ```
//! use nnbo_gp::{GpConfig, GpModel};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nnbo_gp::GpError> {
//! // Noisy observations of y = sin(3x).
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = GpModel::fit(&xs, &ys, &GpConfig::default(), &mut rng)?;
//! let p = model.predict(&[0.5]);
//! assert!((p.mean - (1.5_f64).sin()).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod hyper;
mod kernel;
mod model;

pub use error::GpError;
pub use hyper::{GpConfig, GpHyperParams};
pub use kernel::{ArdSquaredExponential, ScaledRows};
pub use model::{GpModel, GpPrediction};
