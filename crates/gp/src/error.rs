//! Error type for GP fitting.

use std::error::Error;
use std::fmt;

use nnbo_linalg::LinalgError;

/// Error produced when building or fitting a Gaussian-process model.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// The training inputs and targets have inconsistent sizes, or are empty.
    InvalidTrainingSet {
        /// Human-readable description of the inconsistency.
        details: String,
    },
    /// The kernel matrix could not be factored even after adding jitter.
    KernelFactorization(LinalgError),
    /// All restarts of the hyper-parameter optimization produced non-finite
    /// likelihoods.
    OptimizationFailed,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidTrainingSet { details } => {
                write!(f, "invalid training set: {details}")
            }
            GpError::KernelFactorization(e) => {
                write!(f, "kernel matrix factorization failed: {e}")
            }
            GpError::OptimizationFailed => {
                write!(
                    f,
                    "hyper-parameter optimization produced no finite likelihood"
                )
            }
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::KernelFactorization(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::KernelFactorization(e)
    }
}
