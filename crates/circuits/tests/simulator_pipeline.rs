//! Integration tests: full nonlinear-circuit → DC operating point → linearised AC
//! pipeline, plus property tests of the sizing testbenches.

use nnbo_circuits::{
    AcAnalysis, AcSweep, ChargePump, Circuit, DcAnalysis, Element, MosTransistor, MosfetModel,
    SmallSignalCircuit, TwoStageOpAmp, CHARGE_PUMP_DIM, GROUND, OPAMP_DIM,
};
use proptest::prelude::*;

/// Builds a resistively-loaded NMOS common-source amplifier driven from a DC gate
/// bias, and returns (circuit, input node, output node).
fn common_source_amp(rl: f64, vbias: f64) -> (Circuit, usize, usize) {
    let mut ckt = Circuit::new();
    let vdd = ckt.add_node();
    let gate = ckt.add_node();
    let out = ckt.add_node();
    ckt.add(Element::VoltageSource {
        plus: vdd,
        minus: GROUND,
        volts: 1.8,
    });
    ckt.add(Element::VoltageSource {
        plus: gate,
        minus: GROUND,
        volts: vbias,
    });
    ckt.add(Element::Resistor {
        a: vdd,
        b: out,
        ohms: rl,
    });
    ckt.add(Element::Capacitor {
        a: out,
        b: GROUND,
        farads: 1e-12,
    });
    ckt.add(Element::Mosfet {
        drain: out,
        gate,
        source: GROUND,
        transistor: MosTransistor::new(MosfetModel::nmos_180nm(), 20e-6, 1e-6),
    });
    (ckt, gate, out)
}

#[test]
fn common_source_gain_matches_gm_times_load() {
    let rl = 20e3;
    let (ckt, gate, out) = common_source_amp(rl, 0.55);
    let dc = DcAnalysis::new().solve(&ckt).expect("DC converges");
    // The MOSFET is the only one in the netlist.
    let gm = dc.mosfet_params[0].gm;
    let gds = dc.mosfet_params[0].gds;
    assert!(gm > 0.0);

    let ss = SmallSignalCircuit::linearize(&ckt, &dc, gate, out);
    let analysis = AcAnalysis::new(AcSweep {
        start_hz: 10.0,
        stop_hz: 1e9,
        points_per_decade: 20,
    });
    let metrics = analysis.bode_metrics(&ss).expect("AC sweep succeeds");
    let expected_gain = gm * (1.0 / (1.0 / rl + gds));
    let expected_db = 20.0 * expected_gain.log10();
    assert!(
        (metrics.dc_gain_db - expected_db).abs() < 0.5,
        "AC gain {} dB vs analytic {} dB",
        metrics.dc_gain_db,
        expected_db
    );
}

#[test]
fn common_source_bandwidth_scales_with_load_capacitance() {
    let (ckt, gate, out) = common_source_amp(20e3, 0.55);
    let dc = DcAnalysis::new().solve(&ckt).expect("DC converges");
    let ss = SmallSignalCircuit::linearize(&ckt, &dc, gate, out);
    let sweep = AcSweep {
        start_hz: 100.0,
        stop_hz: 10e9,
        points_per_decade: 30,
    };
    let m1 = AcAnalysis::new(sweep).bode_metrics(&ss).unwrap();

    // Add 9 pF of extra load: the dominant pole and hence the UGF must fall ~10x.
    let mut ckt2 = ckt.clone();
    ckt2.add(Element::Capacitor {
        a: out,
        b: GROUND,
        farads: 9e-12,
    });
    let dc2 = DcAnalysis::new().solve(&ckt2).expect("DC converges");
    let ss2 = SmallSignalCircuit::linearize(&ckt2, &dc2, gate, out);
    let m2 = AcAnalysis::new(sweep).bode_metrics(&ss2).unwrap();

    assert!(m1.crossed_unity && m2.crossed_unity);
    let ratio = m1.unity_gain_freq_hz / m2.unity_gain_freq_hz;
    assert!(ratio > 5.0 && ratio < 20.0, "UGF ratio {ratio}");
}

#[test]
fn dc_solution_is_independent_of_initial_gmin_path() {
    // Solving the same circuit twice gives bit-identical results (determinism).
    let (ckt, _, out) = common_source_amp(15e3, 0.58);
    let s1 = DcAnalysis::new().solve(&ckt).unwrap();
    let s2 = DcAnalysis::new().solve(&ckt).unwrap();
    assert_eq!(s1.voltages, s2.voltages);
    assert!(s1.voltage(out) > 0.05 && s1.voltage(out) < 1.75);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn opamp_outputs_are_finite_over_the_whole_design_space(
        x in prop::collection::vec(0.0..1.0f64, OPAMP_DIM)
    ) {
        let bench = TwoStageOpAmp::new();
        let p = bench.evaluate_normalized(&x);
        prop_assert!(p.gain_db.is_finite());
        prop_assert!(p.ugf_hz.is_finite() && p.ugf_hz >= 0.0);
        prop_assert!(p.pm_deg.is_finite());
        prop_assert!(p.power_w > 0.0);
        prop_assert!(p.area_m2 > 0.0);
    }

    #[test]
    fn opamp_evaluation_is_deterministic(
        x in prop::collection::vec(0.0..1.0f64, OPAMP_DIM)
    ) {
        let bench = TwoStageOpAmp::new();
        prop_assert_eq!(bench.evaluate_normalized(&x), bench.evaluate_normalized(&x));
    }

    #[test]
    fn chargepump_outputs_are_finite_and_consistent(
        x in prop::collection::vec(0.0..1.0f64, CHARGE_PUMP_DIM)
    ) {
        let bench = ChargePump::new();
        let p = bench.evaluate_normalized(&x);
        prop_assert!(p.fom.is_finite() && p.fom >= 0.0);
        prop_assert!(p.diff1 >= 0.0 && p.diff2 >= 0.0 && p.diff3 >= 0.0 && p.diff4 >= 0.0);
        prop_assert!(p.deviation >= 0.0);
        // FOM is exactly the weighted combination of its parts (eq. 16).
        let recomputed = 0.3 * p.diff_total() + 0.5 * p.deviation;
        prop_assert!((p.fom - recomputed).abs() < 1e-9);
    }

    #[test]
    fn chargepump_evaluation_is_deterministic(
        x in prop::collection::vec(0.0..1.0f64, CHARGE_PUMP_DIM)
    ) {
        let bench = ChargePump::new();
        prop_assert_eq!(bench.evaluate_normalized(&x), bench.evaluate_normalized(&x));
    }
}
