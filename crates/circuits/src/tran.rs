//! Transient (time-domain) analysis with backward-Euler integration.

use serde::{Deserialize, Serialize};

use crate::dc::{DcAnalysis, DcError};
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, Element, NodeId};

/// A time-dependent stimulus applied to an independent voltage source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Trapezoidal pulse train (SPICE `PULSE` semantics).
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge, in seconds.
        delay: f64,
        /// Rise time, in seconds.
        rise: f64,
        /// Fall time, in seconds.
        fall: f64,
        /// Pulse width (time at `v1`), in seconds.
        width: f64,
        /// Period of the train, in seconds (0 or less means a single pulse).
        period: f64,
    },
    /// Sinusoid `offset + amplitude·sin(2π·frequency·t)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        frequency: f64,
    },
}

impl Waveform {
    /// Value of the waveform at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < delay {
                    return v0;
                }
                let mut tau = t - delay;
                if period > 0.0 {
                    tau %= period;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tau < rise {
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    v1
                } else if tau < rise + width + fall {
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    v0
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * frequency * t).sin(),
        }
    }
}

/// Result of a transient analysis: node voltages sampled at every accepted time
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// The time points, in seconds.
    pub times: Vec<f64>,
    /// `voltages[k][node]` is the voltage of `node` at `times[k]`.
    pub voltages: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The waveform of one node across the whole analysis.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node_waveform(&self, node: NodeId) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node]).collect()
    }

    /// The final voltage of one node.
    ///
    /// # Panics
    ///
    /// Panics if the analysis produced no points or the node id is out of range.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.voltages.last().expect("non-empty transient")[node]
    }
}

/// Fixed-step transient analysis using backward-Euler integration and a Newton
/// solve per time step.
///
/// Capacitors are replaced by their backward-Euler companion model
/// (`G = C/Δt` in parallel with a history current source), nonlinear MOSFETs are
/// linearised at every Newton iteration exactly as in [`DcAnalysis`], and the
/// time-dependent stimuli override selected voltage sources.
///
/// # Example
///
/// ```
/// use nnbo_circuits::{Circuit, Element, TransientAnalysis, Waveform, GROUND};
///
/// // A 1 kΩ / 1 µF low-pass driven by a 1 V step: after 5 time constants the
/// // output has settled to ~1 V.
/// let mut ckt = Circuit::new();
/// let vin = ckt.add_node();
/// let out = ckt.add_node();
/// ckt.add(Element::VoltageSource { plus: vin, minus: GROUND, volts: 0.0 });
/// ckt.add(Element::Resistor { a: vin, b: out, ohms: 1e3 });
/// ckt.add(Element::Capacitor { a: out, b: GROUND, farads: 1e-6 });
/// let step = Waveform::Pulse {
///     v0: 0.0, v1: 1.0, delay: 0.0, rise: 1e-9, fall: 1e-9, width: 1.0, period: 0.0,
/// };
/// let tran = TransientAnalysis::new(5e-3, 10e-6);
/// let result = tran.solve(&ckt, &[(0, step)]).expect("transient converges");
/// assert!(result.node_waveform(out)[1] < 0.1);          // starts near 0 V
/// assert!((result.final_voltage(out) - 1.0) .abs() < 1e-2); // settles at 1 V
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientAnalysis {
    /// Total simulated time, in seconds.
    pub t_stop: f64,
    /// Fixed time step, in seconds.
    pub dt: f64,
    /// Maximum Newton iterations per time step.
    pub max_newton_iterations: usize,
    /// Convergence tolerance on the largest node-voltage update per Newton
    /// iteration, in volts.
    pub tolerance: f64,
}

impl TransientAnalysis {
    /// Creates an analysis with the given stop time and step.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not strictly positive, or `dt > t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop > 0.0 && dt > 0.0, "times must be positive");
        assert!(dt <= t_stop, "time step larger than the stop time");
        TransientAnalysis {
            t_stop,
            dt,
            max_newton_iterations: 60,
            tolerance: 1e-9,
        }
    }

    /// Runs the analysis.  `stimuli` maps voltage-source ordinals (the `k`-th
    /// voltage source in netlist order) to time-dependent waveforms; sources without
    /// a stimulus keep their DC value.
    ///
    /// # Errors
    ///
    /// Returns [`DcError`] when the initial operating point cannot be found or a
    /// time step fails to converge.
    pub fn solve(
        &self,
        circuit: &Circuit,
        stimuli: &[(usize, Waveform)],
    ) -> Result<TransientResult, DcError> {
        // Initial condition: DC operating point with the stimuli at t = 0.
        let dc_circuit = override_sources(circuit, stimuli, 0.0);
        let dc = DcAnalysis::new().solve(&dc_circuit)?;
        let n_nodes = circuit.node_count();
        let mut times = vec![0.0];
        let mut voltages = vec![dc.voltages.clone()];
        let mut previous = dc.voltages;

        let steps = (self.t_stop / self.dt).ceil() as usize;
        for step in 1..=steps {
            let t = (step as f64 * self.dt).min(self.t_stop);
            let mut guess = previous.clone();
            let mut converged = false;
            for _ in 0..self.max_newton_iterations {
                let solution = self
                    .step_solve(circuit, stimuli, t, &previous, &guess)
                    .ok_or(DcError::SingularSystem)?;
                let mut delta: f64 = 0.0;
                for (g, s) in guess.iter_mut().skip(1).zip(solution.iter().skip(1)) {
                    delta = delta.max((s - *g).abs());
                    *g = *s;
                }
                if delta < self.tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(DcError::NoConvergence {
                    last_delta: f64::NAN,
                });
            }
            previous = guess.clone();
            times.push(t);
            voltages.push(guess[..n_nodes].to_vec());
        }
        Ok(TransientResult { times, voltages })
    }

    /// One linearised backward-Euler solve at time `t` around the Newton guess.
    fn step_solve(
        &self,
        circuit: &Circuit,
        stimuli: &[(usize, Waveform)],
        t: f64,
        previous: &[f64],
        guess: &[f64],
    ) -> Option<Vec<f64>> {
        let mut mna = MnaSystem::new(circuit.node_count(), circuit.voltage_source_count());
        let mut vsrc_idx = 0;
        for element in circuit.elements() {
            match element {
                Element::Resistor { a, b, ohms } => mna.stamp_conductance(*a, *b, 1.0 / ohms),
                Element::Capacitor { a, b, farads } => {
                    // Backward Euler: i = C/Δt·(v - v_prev) → conductance + history source.
                    let g = farads / self.dt;
                    mna.stamp_conductance(*a, *b, g);
                    let v_prev = previous[*a] - previous[*b];
                    // History current g·v_prev flows from b to a (it opposes the
                    // conductance term evaluated at the previous voltage).
                    mna.stamp_current(*b, *a, g * v_prev);
                }
                Element::CurrentSource { from, to, amps } => mna.stamp_current(*from, *to, *amps),
                Element::VoltageSource { plus, minus, volts } => {
                    let value = stimuli
                        .iter()
                        .find(|(k, _)| *k == vsrc_idx)
                        .map(|(_, w)| w.value(t))
                        .unwrap_or(*volts);
                    mna.stamp_voltage_source(vsrc_idx, *plus, *minus, value);
                    vsrc_idx += 1;
                }
                Element::Vccs {
                    out_plus,
                    out_minus,
                    ctrl_plus,
                    ctrl_minus,
                    gm,
                } => mna.stamp_vccs(*out_plus, *out_minus, *ctrl_plus, *ctrl_minus, *gm),
                Element::Mosfet {
                    drain,
                    gate,
                    source,
                    transistor,
                } => {
                    let p = transistor.evaluate(guess[*gate], guess[*drain], guess[*source]);
                    mna.stamp_conductance(*drain, *source, p.gds);
                    mna.stamp_vccs(*drain, *source, *gate, *source, p.gm);
                    let vgs = guess[*gate] - guess[*source];
                    let vds = guess[*drain] - guess[*source];
                    let i_eq = p.ids - p.gm * vgs - p.gds * vds;
                    mna.stamp_current(*drain, *source, i_eq);
                }
            }
        }
        mna.stamp_gmin(1e-12);
        mna.solve()
    }
}

/// Clones the circuit with the stimulus values substituted at time `t` (used for
/// the initial operating point).
fn override_sources(circuit: &Circuit, stimuli: &[(usize, Waveform)], t: f64) -> Circuit {
    let mut out = Circuit::new();
    // Recreate the same node ids.
    for _ in 1..circuit.node_count() {
        out.add_node();
    }
    let mut vsrc_idx = 0;
    for element in circuit.elements() {
        match element {
            Element::VoltageSource { plus, minus, volts } => {
                let value = stimuli
                    .iter()
                    .find(|(k, _)| *k == vsrc_idx)
                    .map(|(_, w)| w.value(t))
                    .unwrap_or(*volts);
                out.add(Element::VoltageSource {
                    plus: *plus,
                    minus: *minus,
                    volts: value,
                });
                vsrc_idx += 1;
            }
            other => out.add(other.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{MosTransistor, MosfetModel};
    use crate::netlist::GROUND;

    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.add_node();
        let out = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vin,
            minus: GROUND,
            volts: 0.0,
        });
        ckt.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: r,
        });
        ckt.add(Element::Capacitor {
            a: out,
            b: GROUND,
            farads: c,
        });
        (ckt, out)
    }

    /// An ideal step from 0 to `level` at t ≈ 0 (rise time much shorter than any
    /// circuit time constant).
    fn step(level: f64) -> Waveform {
        Waveform::Pulse {
            v0: 0.0,
            v1: level,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 1e3,
            period: 0.0,
        }
    }

    #[test]
    fn rc_step_response_matches_the_exponential() {
        let (r, c) = (1e3, 1e-6);
        let (ckt, out) = rc_circuit(r, c);
        let tau = r * c;
        let tran = TransientAnalysis::new(3.0 * tau, tau / 200.0);
        let result = tran.solve(&ckt, &[(0, step(1.0))]).unwrap();
        for (t, v) in result.times.iter().zip(result.node_waveform(out).iter()) {
            if *t == 0.0 {
                continue;
            }
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 0.01,
                "at t = {t:e}: simulated {v} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn rc_discharge_from_a_precharged_capacitor() {
        // The source sits at 1 V in DC (pre-charging the capacitor) and is stepped
        // down to 0 V at t ≈ 0: the output decays as exp(-t/τ).
        let (r, c) = (2e3, 0.5e-6);
        // Build with the source at 1 V so the initial operating point is charged.
        let mut ckt = Circuit::new();
        let vin = ckt.add_node();
        let out = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vin,
            minus: GROUND,
            volts: 1.0,
        });
        ckt.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: r,
        });
        ckt.add(Element::Capacitor {
            a: out,
            b: GROUND,
            farads: c,
        });
        let tau = r * c;
        let down_step = Waveform::Pulse {
            v0: 1.0,
            v1: 0.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 1e3,
            period: 0.0,
        };
        let tran = TransientAnalysis::new(2.0 * tau, tau / 100.0);
        let result = tran.solve(&ckt, &[(0, down_step)]).unwrap();
        for (t, v) in result.times.iter().zip(result.node_waveform(out).iter()) {
            if *t == 0.0 {
                continue;
            }
            let expected = (-t / tau).exp();
            assert!(
                (v - expected).abs() < 0.02,
                "at t = {t:e}: simulated {v} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.8,
            delay: 1e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 5e-9,
            period: 20e-9,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1.5e-9) - 0.9).abs() < 1e-9); // mid-rise
        assert_eq!(w.value(4e-9), 1.8); // flat top
        assert_eq!(w.value(10e-9), 0.0); // back down
        assert_eq!(w.value(24e-9), 1.8); // second period flat top
    }

    #[test]
    fn sine_source_drives_the_rc_filter_with_attenuation() {
        let (r, c) = (1e3, 1e-6);
        let (ckt, out) = rc_circuit(r, c);
        // Drive above the corner frequency (159 Hz) and simulate long enough for the
        // start-up transient (τ = 1 ms) to die out before measuring the peak.
        let freq = 1e3;
        let tran = TransientAnalysis::new(10e-3, 2e-6);
        let result = tran
            .solve(
                &ckt,
                &[(
                    0,
                    Waveform::Sine {
                        offset: 0.0,
                        amplitude: 1.0,
                        frequency: freq,
                    },
                )],
            )
            .unwrap();
        // Peak of the output over the last quarter of the run (steady state).
        let wave = result.node_waveform(out);
        let peak = wave[3 * wave.len() / 4..]
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()));
        let expected = 1.0 / (1.0 + (2.0 * std::f64::consts::PI * freq * r * c).powi(2)).sqrt();
        assert!(
            (peak - expected).abs() < 0.05 * expected,
            "peak {peak} vs expected {expected}"
        );
    }

    #[test]
    fn nmos_inverter_switches_during_a_transient() {
        // Resistor-loaded NMOS inverter driven by a pulse on the gate.
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node();
        let gate = ckt.add_node();
        let out = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vdd,
            minus: GROUND,
            volts: 1.8,
        });
        ckt.add(Element::VoltageSource {
            plus: gate,
            minus: GROUND,
            volts: 0.0,
        });
        ckt.add(Element::Resistor {
            a: vdd,
            b: out,
            ohms: 10e3,
        });
        ckt.add(Element::Capacitor {
            a: out,
            b: GROUND,
            farads: 50e-15,
        });
        ckt.add(Element::Mosfet {
            drain: out,
            gate,
            source: GROUND,
            transistor: MosTransistor::new(MosfetModel::nmos_180nm(), 10e-6, 0.5e-6),
        });
        let tran = TransientAnalysis::new(40e-9, 0.05e-9);
        let result = tran
            .solve(
                &ckt,
                &[(
                    1,
                    Waveform::Pulse {
                        v0: 0.0,
                        v1: 1.8,
                        delay: 5e-9,
                        rise: 0.5e-9,
                        fall: 0.5e-9,
                        width: 20e-9,
                        period: 0.0,
                    },
                )],
            )
            .unwrap();
        let wave = result.node_waveform(out);
        // Before the pulse the output sits at VDD; well after the rising edge it is
        // pulled low; after the falling edge it recovers towards VDD.
        let before = wave[result.times.iter().position(|t| *t >= 4e-9).unwrap()];
        let during = wave[result.times.iter().position(|t| *t >= 20e-9).unwrap()];
        let after = *wave.last().unwrap();
        assert!(before > 1.7, "output before pulse {before}");
        assert!(during < 0.4, "output during pulse {during}");
        assert!(after > 1.0, "output after pulse {after}");
    }

    #[test]
    #[should_panic(expected = "time step larger")]
    fn oversized_time_step_is_rejected() {
        let _ = TransientAnalysis::new(1e-9, 1e-6);
    }
}
