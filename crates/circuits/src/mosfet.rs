//! Level-1 (square-law) MOSFET model with channel-length modulation.

use serde::{Deserialize, Serialize};

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Operating region of a MOSFET at a given bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OperatingRegion {
    /// `|Vgs| < |Vth|` — device is off.
    #[default]
    Cutoff,
    /// `|Vds| < |Vgs - Vth|` — linear / triode region.
    Triode,
    /// `|Vds| >= |Vgs - Vth|` — saturation.
    Saturation,
}

/// Technology-level model parameters shared by devices of one polarity.
///
/// The defaults approximate a generic 180 nm CMOS process; the charge-pump
/// testbench scales them for a 40 nm-like process and shifts them per PVT corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetModel {
    /// Polarity of the device.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage magnitude in volts.
    pub vth: f64,
    /// Process transconductance `µ Cox` in A/V².
    pub kp: f64,
    /// Channel-length-modulation coefficient per metre of channel length:
    /// `λ = lambda_per_length / L` (1/V).
    pub lambda_per_length: f64,
    /// Gate-oxide capacitance per unit area in F/m².
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per unit width in F/m.
    pub overlap_cap_per_width: f64,
    /// Drain/source junction capacitance per unit width in F/m.
    pub junction_cap_per_width: f64,
}

impl MosfetModel {
    /// Generic 180 nm-like NMOS model.
    pub fn nmos_180nm() -> Self {
        MosfetModel {
            polarity: MosPolarity::Nmos,
            vth: 0.45,
            kp: 300e-6,
            lambda_per_length: 0.05e-6,
            cox: 8.5e-3,
            overlap_cap_per_width: 0.4e-9,
            junction_cap_per_width: 0.8e-9,
        }
    }

    /// Generic 180 nm-like PMOS model.
    pub fn pmos_180nm() -> Self {
        MosfetModel {
            polarity: MosPolarity::Pmos,
            vth: 0.45,
            kp: 80e-6,
            lambda_per_length: 0.06e-6,
            cox: 8.5e-3,
            overlap_cap_per_width: 0.4e-9,
            junction_cap_per_width: 0.9e-9,
        }
    }

    /// Channel-length-modulation coefficient λ (1/V) for a given channel length.
    pub fn lambda(&self, length: f64) -> f64 {
        self.lambda_per_length / length.max(1e-9)
    }
}

/// A sized MOSFET instance: a model plus width and length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosTransistor {
    /// The technology model.
    pub model: MosfetModel,
    /// Channel width in metres.
    pub width: f64,
    /// Channel length in metres.
    pub length: f64,
}

/// Small-signal parameters extracted at a DC bias point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SmallSignalParams {
    /// Transconductance ∂Id/∂Vgs in siemens.
    pub gm: f64,
    /// Output conductance ∂Id/∂Vds in siemens.
    pub gds: f64,
    /// Drain current at the bias point (signed: positive flows drain→source for NMOS).
    pub ids: f64,
    /// Gate-source capacitance in farads.
    pub cgs: f64,
    /// Gate-drain capacitance in farads.
    pub cgd: f64,
    /// Drain-bulk capacitance in farads.
    pub cdb: f64,
    /// Operating region at the bias point.
    pub region: OperatingRegion,
}

impl MosTransistor {
    /// Creates a sized device.
    ///
    /// # Panics
    ///
    /// Panics if width or length is not strictly positive.
    pub fn new(model: MosfetModel, width: f64, length: f64) -> Self {
        assert!(
            width > 0.0 && length > 0.0,
            "device geometry must be positive"
        );
        MosTransistor {
            model,
            width,
            length,
        }
    }

    /// Aspect ratio W/L.
    pub fn aspect_ratio(&self) -> f64 {
        self.width / self.length
    }

    /// `β = kp · W / L` in A/V².
    pub fn beta(&self) -> f64 {
        self.model.kp * self.aspect_ratio()
    }

    /// Evaluates the drain current and small-signal parameters at the given terminal
    /// voltages (all referred to ground).
    ///
    /// For a PMOS device the usual sign conventions apply: the device conducts when
    /// `Vgs` is sufficiently negative, and `ids` is the current flowing from source
    /// to drain (so the returned `ids` is the current *into the drain node*, which is
    /// negative when the device sources current into the drain).
    pub fn evaluate(&self, vg: f64, vd: f64, vs: f64) -> SmallSignalParams {
        match self.model.polarity {
            MosPolarity::Nmos => self.evaluate_signed(vg - vs, vd - vs, 1.0),
            MosPolarity::Pmos => self.evaluate_signed(vs - vg, vs - vd, -1.0),
        }
    }

    /// Square-law evaluation in the "NMOS frame": `vgs`, `vds` are the effective
    /// gate-source and drain-source voltages after polarity folding, and `sign` maps
    /// the current back to the drain-node convention.
    fn evaluate_signed(&self, vgs: f64, vds: f64, sign: f64) -> SmallSignalParams {
        let vth = self.model.vth;
        let beta = self.beta();
        let lambda = self.model.lambda(self.length);
        let vov = vgs - vth;
        // Handle a negative vds by source/drain swap symmetry: the square-law model is
        // antisymmetric in vds for the triode region; for simplicity we clamp to the
        // forward region, which is the regime every testbench in this workspace uses.
        let vds = vds.max(0.0);

        let (ids_mag, gm, gds, region) = if vov <= 0.0 {
            // Subthreshold leakage is ignored by the level-1 model.
            (0.0, 0.0, 1e-12, OperatingRegion::Cutoff)
        } else if vds < vov {
            // Triode region.
            let ids = beta * (vov * vds - 0.5 * vds * vds);
            let gm = beta * vds;
            let gds = beta * (vov - vds) + 1e-12;
            (ids, gm, gds, OperatingRegion::Triode)
        } else {
            // Saturation with channel-length modulation (SPICE level-1 form,
            // Id = ½·β·Vov²·(1 + λ·Vds)).
            let ids0 = 0.5 * beta * vov * vov;
            let ids = ids0 * (1.0 + lambda * vds);
            let gm = beta * vov * (1.0 + lambda * vds);
            let gds = ids0 * lambda + 1e-12;
            (ids, gm, gds, OperatingRegion::Saturation)
        };

        let cox_area = self.model.cox * self.width * self.length;
        let cgs = match region {
            OperatingRegion::Cutoff => cox_area / 3.0,
            OperatingRegion::Triode => cox_area / 2.0,
            OperatingRegion::Saturation => 2.0 * cox_area / 3.0,
        } + self.model.overlap_cap_per_width * self.width;
        let cgd = match region {
            OperatingRegion::Triode => cox_area / 2.0,
            _ => 0.0,
        } + self.model.overlap_cap_per_width * self.width;
        let cdb = self.model.junction_cap_per_width * self.width;

        SmallSignalParams {
            gm,
            gds,
            ids: sign * ids_mag,
            cgs,
            cgd,
            cdb,
            region,
        }
    }

    /// Gate-source voltage magnitude needed to carry `|id|` in saturation
    /// (ignoring channel-length modulation): `Vgs = Vth + sqrt(2·Id/β)`.
    pub fn vgs_for_current(&self, id: f64) -> f64 {
        self.model.vth + (2.0 * id.max(0.0) / self.beta()).sqrt()
    }

    /// Overdrive voltage `Vov = sqrt(2·Id/β)` for the device carrying `|id|` in
    /// saturation.
    pub fn overdrive_for_current(&self, id: f64) -> f64 {
        (2.0 * id.max(0.0) / self.beta()).sqrt()
    }

    /// Saturation transconductance for a device carrying `|id|`:
    /// `gm = sqrt(2·β·Id)`.
    pub fn gm_for_current(&self, id: f64) -> f64 {
        (2.0 * self.beta() * id.max(0.0)).sqrt()
    }

    /// Saturation output conductance for a device carrying `|id|`:
    /// `gds = λ·Id`.
    pub fn gds_for_current(&self, id: f64) -> f64 {
        self.model.lambda(self.length) * id.max(0.0) + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos(w_um: f64, l_um: f64) -> MosTransistor {
        MosTransistor::new(MosfetModel::nmos_180nm(), w_um * 1e-6, l_um * 1e-6)
    }

    fn pmos(w_um: f64, l_um: f64) -> MosTransistor {
        MosTransistor::new(MosfetModel::pmos_180nm(), w_um * 1e-6, l_um * 1e-6)
    }

    #[test]
    fn cutoff_below_threshold() {
        let m = nmos(10.0, 0.18);
        let p = m.evaluate(0.2, 1.0, 0.0);
        assert_eq!(p.region, OperatingRegion::Cutoff);
        assert_eq!(p.ids, 0.0);
        assert_eq!(p.gm, 0.0);
    }

    #[test]
    fn saturation_current_follows_square_law() {
        let m = nmos(10.0, 1.0);
        let vgs = 0.8;
        let p = m.evaluate(vgs, 1.5, 0.0);
        assert_eq!(p.region, OperatingRegion::Saturation);
        let vov = vgs - 0.45;
        let expected = 0.5 * 300e-6 * 10.0 * vov * vov;
        // Allow for the channel-length-modulation factor.
        assert!((p.ids - expected).abs() / expected < 0.1);
        assert!(p.gm > 0.0 && p.gds > 0.0);
    }

    #[test]
    fn triode_region_when_vds_is_small() {
        let m = nmos(10.0, 0.5);
        let p = m.evaluate(1.2, 0.05, 0.0);
        assert_eq!(p.region, OperatingRegion::Triode);
        // Triode conductance should roughly equal beta*vov.
        let g_expected = m.beta() * (1.2 - 0.45);
        assert!((p.gds - g_expected).abs() / g_expected < 0.2);
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let mp = pmos(20.0, 1.0);
        // Source at 1.8 V, gate 1.0 V below source, drain low: saturated PMOS.
        let p = mp.evaluate(0.8, 0.2, 1.8);
        assert_eq!(p.region, OperatingRegion::Saturation);
        // Current flows into the drain node (source → drain inside the device).
        assert!(p.ids < 0.0);
        assert!(p.gm > 0.0);
    }

    #[test]
    fn gm_increases_with_width_and_current() {
        let narrow = nmos(5.0, 1.0);
        let wide = nmos(50.0, 1.0);
        let id = 20e-6;
        assert!(wide.gm_for_current(id) > narrow.gm_for_current(id));
        assert!(narrow.gm_for_current(2.0 * id) > narrow.gm_for_current(id));
    }

    #[test]
    fn longer_channel_has_lower_output_conductance() {
        let short = nmos(10.0, 0.18);
        let long = nmos(10.0, 2.0);
        let id = 20e-6;
        assert!(long.gds_for_current(id) < short.gds_for_current(id));
    }

    #[test]
    fn analytic_small_signal_matches_numerical_derivatives() {
        let m = nmos(20.0, 0.5);
        let (vg, vd, vs) = (0.9, 1.2, 0.0);
        let p = m.evaluate(vg, vd, vs);
        let h = 1e-6;
        let gm_num = (m.evaluate(vg + h, vd, vs).ids - m.evaluate(vg - h, vd, vs).ids) / (2.0 * h);
        let gds_num = (m.evaluate(vg, vd + h, vs).ids - m.evaluate(vg, vd - h, vs).ids) / (2.0 * h);
        assert!((p.gm - gm_num).abs() / gm_num < 1e-4);
        assert!((p.gds - gds_num).abs() / gds_num.max(1e-12) < 1e-3);
    }

    #[test]
    fn vgs_for_current_is_consistent_with_evaluate() {
        let m = nmos(10.0, 1.0);
        let id = 50e-6;
        let vgs = m.vgs_for_current(id);
        // Bias the device in saturation with that Vgs: current should be close to id
        // (up to channel-length modulation).
        let p = m.evaluate(vgs, 1.5, 0.0);
        assert!((p.ids - id).abs() / id < 0.1);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn zero_width_is_rejected() {
        let _ = MosTransistor::new(MosfetModel::nmos_180nm(), 0.0, 1e-6);
    }
}
