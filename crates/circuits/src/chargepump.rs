//! Charge-pump testbench over PVT corners (Table II circuit).

use serde::{Deserialize, Serialize};

use crate::pvt::{Process, PvtCorner};
use crate::testbench::{CornerContext, CornerOutput, Testbench};

/// Number of design variables of the charge-pump sizing problem
/// (18 transistors × width and length).
pub const CHARGE_PUMP_DIM: usize = 36;

/// Aggregated performances of one charge-pump design, in the units of the paper
/// (all currents in µA).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargePumpPerformance {
    /// `max over PVT (IM1_max - IM1_avg)` — spread of the UP current above its mean.
    pub diff1: f64,
    /// `max over PVT (IM1_avg - IM1_min)` — spread of the UP current below its mean.
    pub diff2: f64,
    /// `max over PVT (IM2_max - IM2_avg)` — spread of the DOWN current above its mean.
    pub diff3: f64,
    /// `max over PVT (IM2_avg - IM2_min)` — spread of the DOWN current below its mean.
    pub diff4: f64,
    /// `max|IM1_avg − 40 µA| + max|IM2_avg − 40 µA|` over PVT.
    pub deviation: f64,
    /// `FOM = 0.3·(diff1+diff2+diff3+diff4) + 0.5·deviation` (eq. 16 of the paper).
    pub fom: f64,
}

impl ChargePumpPerformance {
    /// Sum of the four spread metrics (the `diff` term of eq. 16).
    pub fn diff_total(&self) -> f64 {
        self.diff1 + self.diff2 + self.diff3 + self.diff4
    }

    /// Builds the paper's aggregated performance report (eq. 16, all
    /// currents in µA) from the worst-case fold of the per-corner
    /// measurements (amperes).
    pub fn from_worst_corners(worst: &ChargePumpCornerMeasurement) -> Self {
        let to_ua = 1e6;
        let diff1 = worst.diff1 * to_ua;
        let diff2 = worst.diff2 * to_ua;
        let diff3 = worst.diff3 * to_ua;
        let diff4 = worst.diff4 * to_ua;
        let deviation = (worst.dev_up + worst.dev_down) * to_ua;
        let fom = 0.3 * (diff1 + diff2 + diff3 + diff4) + 0.5 * deviation;
        ChargePumpPerformance {
            diff1,
            diff2,
            diff3,
            diff4,
            deviation,
            fom,
        }
    }

    /// `true` when the Table-II constraints are satisfied:
    /// `diff1,2 < 20 µA`, `diff3,4 < 5 µA`, `deviation < 5 µA`.
    pub fn feasible(&self) -> bool {
        self.diff1 < 20.0
            && self.diff2 < 20.0
            && self.diff3 < 5.0
            && self.diff4 < 5.0
            && self.deviation < 5.0
    }
}

/// The raw measurement of one PVT corner: UP/DOWN current spreads around
/// their sweep averages and the averages' deviation from the target, all
/// in amperes (the paper's µA conversion happens only when the worst-case
/// fold is turned into a [`ChargePumpPerformance`]).
///
/// Every metric is non-negative, so the all-zero measurement is the
/// identity of the worst-case fold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargePumpCornerMeasurement {
    /// `IM1_max − IM1_avg` — UP-current spread above its sweep average.
    pub diff1: f64,
    /// `IM1_avg − IM1_min` — UP-current spread below its sweep average.
    pub diff2: f64,
    /// `IM2_max − IM2_avg` — DOWN-current spread above its sweep average.
    pub diff3: f64,
    /// `IM2_avg − IM2_min` — DOWN-current spread below its sweep average.
    pub diff4: f64,
    /// `|IM1_avg − I_target|` — deviation of the average UP current.
    pub dev_up: f64,
    /// `|IM2_avg − I_target|` — deviation of the average DOWN current.
    pub dev_down: f64,
}

impl ChargePumpCornerMeasurement {
    /// The identity of the worst-case fold (every metric is non-negative).
    pub fn zero() -> Self {
        ChargePumpCornerMeasurement {
            diff1: 0.0,
            diff2: 0.0,
            diff3: 0.0,
            diff4: 0.0,
            dev_up: 0.0,
            dev_down: 0.0,
        }
    }
}

impl CornerOutput for ChargePumpCornerMeasurement {
    /// Componentwise maximum — exactly the per-metric `max` the paper's
    /// eq. 15 takes over the PVT corners.
    fn fold_worst(&self, other: &Self) -> Self {
        ChargePumpCornerMeasurement {
            diff1: self.diff1.max(other.diff1),
            diff2: self.diff2.max(other.diff2),
            diff3: self.diff3.max(other.diff3),
            diff4: self.diff4.max(other.diff4),
            dev_up: self.dev_up.max(other.dev_up),
            dev_down: self.dev_down.max(other.dev_down),
        }
    }

    fn all_finite(&self) -> bool {
        self.diff1.is_finite()
            && self.diff2.is_finite()
            && self.diff3.is_finite()
            && self.diff4.is_finite()
            && self.dev_up.is_finite()
            && self.dev_down.is_finite()
    }
}

/// Indices of the 18 devices in the design vector (each device owns two consecutive
/// entries: width then length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Device {
    UpMirrorDiode = 0,
    UpMirrorOut = 1,
    UpCascode = 2,
    UpCascodeBias = 3,
    UpSwitch = 4,
    UpDummy = 5,
    DownMirrorDiode = 6,
    DownMirrorOut = 7,
    DownCascode = 8,
    DownCascodeBias = 9,
    DownSwitch = 10,
    DownDummy = 11,
    BiasP = 12,
    BiasN = 13,
    AmpInput = 14,
    AmpLoad = 15,
    AmpTail = 16,
    RefBuffer = 17,
}

/// Behavioural charge-pump model with 36 design variables evaluated over a set of
/// PVT corners.
///
/// The paper's Table-II circuit is a proprietary SMIC 40 nm charge pump provided by
/// the authors of the WEIBO paper; this testbench substitutes a physics-motivated
/// behavioural model of the same structure (documented in `DESIGN.md`):
///
/// * PMOS (UP) and NMOS (DOWN) output current sources built as cascoded mirrors with
///   series switches, referenced to a 40 µA bias branch;
/// * channel-length modulation, switch compliance, charge injection and mirror
///   mismatch make the output currents vary with the output voltage and with PVT;
/// * a replica feedback amplifier trims the UP source towards the reference;
/// * the 18 PVT corners of [`PvtCorner::standard_18`] shift `kp`, `Vth`, supply and
///   temperature.
///
/// The observable metrics are exactly those of eq. 16: the per-corner worst-case
/// spreads of the UP/DOWN currents (`diff1..diff4`), the worst-case deviation of the
/// average currents from 40 µA, and the scalar FOM.
///
/// # Example
///
/// ```
/// use nnbo_circuits::ChargePump;
///
/// let bench = ChargePump::new();
/// let perf = bench.evaluate_normalized(&[0.5; 36]);
/// assert!(perf.fom.is_finite() && perf.fom > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChargePump {
    /// Target output current in amperes (40 µA in the paper).
    pub target_current: f64,
    /// Switching frequency used for the charge-injection terms, in hertz.
    pub clock_frequency: f64,
    /// PVT corners evaluated (18 by default, as in the paper).
    corners: Vec<PvtCorner>,
    /// Number of output-voltage sweep points per corner.
    sweep_points: usize,
}

impl Default for ChargePump {
    fn default() -> Self {
        ChargePump {
            target_current: 40e-6,
            clock_frequency: 10e6,
            corners: PvtCorner::standard_18(),
            sweep_points: 13,
        }
    }
}

impl ChargePump {
    /// Creates the testbench with the standard 18 PVT corners.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a testbench restricted to the given corners (useful for tests and for
    /// nominal-corner-only experiments).
    pub fn with_corners(corners: Vec<PvtCorner>) -> Self {
        assert!(!corners.is_empty(), "at least one corner is required");
        ChargePump {
            corners,
            ..Self::default()
        }
    }

    /// The PVT corners this bench evaluates.
    pub fn corners(&self) -> &[PvtCorner] {
        &self.corners
    }

    /// Bounds of the 36 physical design variables.  Even entries are device widths
    /// (metres), odd entries device lengths (metres).
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        let mut b = Vec::with_capacity(CHARGE_PUMP_DIM);
        for _device in 0..18 {
            b.push((0.12e-6, 20e-6)); // width
            b.push((40e-9, 0.5e-6)); // length
        }
        b
    }

    /// Maps a point of the unit hypercube to physical units.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 36`.
    pub fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            CHARGE_PUMP_DIM,
            "expected {CHARGE_PUMP_DIM} variables"
        );
        self.bounds()
            .iter()
            .zip(x.iter())
            .map(|((lo, hi), t)| lo + t.clamp(0.0, 1.0) * (hi - lo))
            .collect()
    }

    /// Evaluates a design in normalised `[0, 1]` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 36`.
    pub fn evaluate_normalized(&self, x: &[f64]) -> ChargePumpPerformance {
        self.evaluate(&self.denormalize(x))
    }

    /// Evaluates a design in physical units, reporting a degenerate corner
    /// honestly instead of returning non-finite metrics.
    ///
    /// This is the worst-case corner sweep of the paper expressed through
    /// the [`Testbench`] measurement: every corner is measured via
    /// [`Testbench::measure`] and folded with
    /// [`CornerOutput::fold_worst`], so a non-finite corner fails the
    /// sweep *naming the corner* — it never reaches the aggregate.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when any corner produces a non-finite
    /// current difference or deviation, identifying the corner.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 36` or any variable is not strictly positive.
    pub fn try_evaluate(&self, x: &[f64]) -> Result<ChargePumpPerformance, String> {
        let mut worst = ChargePumpCornerMeasurement::zero();
        for (ci, corner) in self.corners.iter().enumerate() {
            let m = self.measure(x, &CornerContext::new(*corner, ci))?;
            worst = worst.fold_worst(&m);
        }
        Ok(ChargePumpPerformance::from_worst_corners(&worst))
    }

    /// Fallible evaluation in normalised `[0, 1]` coordinates — see
    /// [`ChargePump::try_evaluate`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChargePump::try_evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 36`.
    pub fn try_evaluate_normalized(&self, x: &[f64]) -> Result<ChargePumpPerformance, String> {
        self.try_evaluate(&self.denormalize(x))
    }

    /// Evaluates a design in physical units.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 36` or any variable is not strictly positive.
    pub fn evaluate(&self, x: &[f64]) -> ChargePumpPerformance {
        assert_eq!(
            x.len(),
            CHARGE_PUMP_DIM,
            "expected {CHARGE_PUMP_DIM} variables"
        );
        assert!(
            x.iter().all(|v| *v > 0.0),
            "design variables must be positive"
        );

        let mut worst = ChargePumpCornerMeasurement::zero();
        for (ci, corner) in self.corners.iter().enumerate() {
            worst = worst.fold_worst(&self.corner_measurement(x, corner, ci));
        }
        ChargePumpPerformance::from_worst_corners(&worst)
    }

    /// The raw measurement of one corner: current spreads and target
    /// deviations of both sources over the output-voltage sweep, in
    /// amperes.
    ///
    /// `corner_index` is the corner's position in the evaluated corner
    /// list; it seeds the deterministic per-corner mismatch sign, so the
    /// same corner at the same index always measures identically.
    fn corner_measurement(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        corner_index: usize,
    ) -> ChargePumpCornerMeasurement {
        let (up_stats, down_stats) = self.corner_currents(x, corner, corner_index);
        ChargePumpCornerMeasurement {
            diff1: up_stats.max - up_stats.avg,
            diff2: up_stats.avg - up_stats.min,
            diff3: down_stats.max - down_stats.avg,
            diff4: down_stats.avg - down_stats.min,
            dev_up: (up_stats.avg - self.target_current).abs(),
            dev_down: (down_stats.avg - self.target_current).abs(),
        }
    }

    /// Width/length of one device from the design vector.
    fn geometry(x: &[f64], device: Device) -> (f64, f64) {
        let i = device as usize;
        (x[2 * i], x[2 * i + 1])
    }

    /// Aspect ratio W/L of one device.
    fn ratio(x: &[f64], device: Device) -> f64 {
        let (w, l) = Self::geometry(x, device);
        w / l
    }

    /// Per-corner current statistics of the UP (PMOS) and DOWN (NMOS) sources over
    /// the output-voltage sweep.
    fn corner_currents(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        corner_index: usize,
    ) -> (CurrentStats, CurrentStats) {
        // 40 nm-like technology constants.
        let kp_n0 = 450e-6;
        let kp_p0 = 180e-6;
        let vth_n0 = 0.38;
        let vth_p0 = 0.40;
        let lambda_per_length = 0.045e-6;

        let kp_n = kp_n0 * corner.kp_factor();
        let kp_p = kp_p0 * corner.kp_factor();
        let vth_n = vth_n0 + corner.vth_shift();
        let vth_p = vth_p0 + corner.vth_shift();
        let vdd = corner.vdd;

        // --- Reference current generation (bias branch + buffer). ---------------
        let (wbp, lbp) = Self::geometry(x, Device::BiasP);
        let (wbn, lbn) = Self::geometry(x, Device::BiasN);
        let (wbuf, lbuf) = Self::geometry(x, Device::RefBuffer);
        let bias_area = (wbp * lbp + wbn * lbn) / (4e-6 * 0.3e-6);
        let supply_sens = 0.08 / (1.0 + 4.0 * (lbp + lbn) / 0.6e-6);
        let proc_sens = 0.05 / (1.0 + bias_area);
        let temp_sens = 4e-4 / (1.0 + lbn / 0.2e-6);
        let proc_sign = match corner.process {
            Process::SlowSlow => -1.0,
            Process::TypicalTypical => 0.0,
            Process::FastFast => 1.0,
        };
        let buffer_strength = (wbuf / lbuf) / ((wbuf / lbuf) + 20.0);
        let i_ref = self.target_current
            * (1.0
                + supply_sens * (vdd - 1.1) / 1.1
                + proc_sens * proc_sign
                + temp_sens * (corner.temperature - 27.0) * (1.0 - 0.5 * buffer_strength));

        // --- Replica feedback amplifier. ----------------------------------------
        let (wai, lai) = Self::geometry(x, Device::AmpInput);
        let (_wal, lal) = Self::geometry(x, Device::AmpLoad);
        let (wat, lat) = Self::geometry(x, Device::AmpTail);
        let i_amp = 5e-6 * (wat / lat) / 20.0;
        let gm_amp = (2.0 * kp_n * (wai / lai) * (i_amp / 2.0).max(1e-9)).sqrt();
        let go_amp = (lambda_per_length / lai + lambda_per_length / lal) * (i_amp / 2.0).max(1e-9);
        let amp_gain = (gm_amp / go_amp.max(1e-12)).min(500.0);
        // Feedback correction factor in [0, 1): how strongly the UP source is servoed
        // towards the reference.
        let fb = amp_gain / (1.0 + amp_gain);

        // --- UP (PMOS) source. ---------------------------------------------------
        let up = self.source_currents(
            x,
            SourceSide::Up,
            i_ref,
            kp_p,
            vth_p,
            lambda_per_length,
            vdd,
            fb,
            corner_index,
        );
        // --- DOWN (NMOS) source. -------------------------------------------------
        let down = self.source_currents(
            x,
            SourceSide::Down,
            i_ref,
            kp_n,
            vth_n,
            lambda_per_length,
            vdd,
            0.0,
            corner_index,
        );
        (up, down)
    }

    /// Sweeps the output voltage and returns the statistics of one current source.
    #[allow(clippy::too_many_arguments)]
    fn source_currents(
        &self,
        x: &[f64],
        side: SourceSide,
        i_ref: f64,
        kp: f64,
        vth: f64,
        lambda_per_length: f64,
        vdd: f64,
        feedback: f64,
        corner_index: usize,
    ) -> CurrentStats {
        let (diode, mirror, cascode, _casc_bias, switch, dummy) = match side {
            SourceSide::Up => (
                Device::UpMirrorDiode,
                Device::UpMirrorOut,
                Device::UpCascode,
                Device::UpCascodeBias,
                Device::UpSwitch,
                Device::UpDummy,
            ),
            SourceSide::Down => (
                Device::DownMirrorDiode,
                Device::DownMirrorOut,
                Device::DownCascode,
                Device::DownCascodeBias,
                Device::DownSwitch,
                Device::DownDummy,
            ),
        };

        let ratio_mirror = Self::ratio(x, mirror) / Self::ratio(x, diode);
        let (wm, lm) = Self::geometry(x, mirror);
        let (wc, lc) = Self::geometry(x, cascode);
        let (wsw, lsw) = Self::geometry(x, switch);
        let (wdu, ldu) = Self::geometry(x, dummy);

        // Nominal mirrored current, optionally servoed towards the reference by the
        // replica amplifier (UP side only).
        let i_nominal = i_ref * ratio_mirror;
        let i_servoed = i_nominal + (i_ref - i_nominal) * feedback;

        // Systematic mirror mismatch shrinking with device area (Pelgrom-like), with
        // a deterministic per-corner sign so that different corners disagree.
        let area_um2 = (wm * lm) / 1e-12;
        let mismatch_sigma = 0.015 / area_um2.max(1e-3).sqrt();
        let corner_sign = ((corner_index as f64 + 1.0) * 2.399).sin();
        let i_base = i_servoed * (1.0 + mismatch_sigma * corner_sign);

        // Output conductance of the cascoded mirror.
        let lambda_mirror = lambda_per_length / lm;
        let gm_cascode = (2.0 * kp * (wc / lc) * i_base.max(1e-9)).sqrt();
        let gds_cascode = lambda_per_length / lc * i_base.max(1e-9);
        let cascode_boost = (gm_cascode / gds_cascode.max(1e-12)).min(400.0);
        let lambda_eff = lambda_mirror / (1.0 + cascode_boost);

        // Overdrives and switch resistance for the compliance limit.
        let vov_mirror = (2.0 * i_base / (kp * (wm / lm).max(1e-3))).max(0.0).sqrt();
        let vov_cascode = (2.0 * i_base / (kp * (wc / lc).max(1e-3))).max(0.0).sqrt();
        let r_switch = 1.0 / (kp * (wsw / lsw) * (vdd - vth - 0.1).max(0.05));
        // Wide-swing cascode biasing: the cascode only costs a saturation margin of
        // about half its overdrive on top of the mirror overdrive.
        let headroom_needed = vov_mirror + 0.5 * vov_cascode + i_base * r_switch;

        // Charge-injection spread: imbalance between the switch and its half-sized
        // dummy, converted to an average-current ripple at the clock rate.
        let cox = 12e-3; // F/m² for a 40 nm-like gate stack
        let q_inj = cox * (wsw * lsw - 0.5 * wdu * ldu).abs() * vdd;
        let i_ripple = q_inj * self.clock_frequency;

        let vref = vdd / 2.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let points = self.sweep_points.max(3);
        for k in 0..points {
            // The PLL loop filter keeps the charge-pump output inside its compliance
            // window; sweep the usable 25 %–75 % portion of the supply as the
            // specification window.
            let v = vdd * (0.25 + 0.50 * k as f64 / (points - 1) as f64);
            // Voltage across the source: UP delivers from VDD down to v, DOWN sinks
            // from v down to ground.
            let v_across = match side {
                SourceSide::Up => vdd - v,
                SourceSide::Down => v,
            };
            let headroom = v_across - headroom_needed;
            // Smooth compliance collapse when the headroom disappears.
            let compliance = 1.0 / (1.0 + (-headroom / 0.05).exp());
            let modulation = 1.0 + lambda_eff * (v_across - (vdd - vref)).max(-vdd);
            let ripple = i_ripple * (v / vdd - 0.5);
            let i = i_base * modulation * compliance + ripple;
            min = min.min(i);
            max = max.max(i);
            sum += i;
        }
        CurrentStats {
            min,
            max,
            avg: sum / points as f64,
        }
    }
}

impl Testbench for ChargePump {
    type Output = ChargePumpCornerMeasurement;

    fn name(&self) -> &str {
        "charge-pump"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        ChargePump::bounds(self)
    }

    fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        ChargePump::denormalize(self, x)
    }

    /// Measures exactly one PVT corner — the corner (and its index, which
    /// seeds the deterministic mismatch sign) comes from the context; the
    /// bench's own corner list is *not* consulted, so a [`crate::CornerSweep`]
    /// over [`PvtCorner::standard_18`] reproduces [`ChargePump::evaluate`]
    /// corner for corner.
    fn measure(
        &self,
        x: &[f64],
        ctx: &CornerContext,
    ) -> Result<ChargePumpCornerMeasurement, String> {
        assert_eq!(
            x.len(),
            CHARGE_PUMP_DIM,
            "expected {CHARGE_PUMP_DIM} variables"
        );
        assert!(
            x.iter().all(|v| *v > 0.0),
            "design variables must be positive"
        );
        let m = self.corner_measurement(x, &ctx.corner, ctx.index);
        if m.all_finite() {
            Ok(m)
        } else {
            Err(format!(
                "corner {} produced a non-finite charge-pump measurement: {m:?}",
                ctx.corner
            ))
        }
    }
}

/// Which output current source is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceSide {
    Up,
    Down,
}

/// Min / average / max of a swept current.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CurrentStats {
    min: f64,
    max: f64,
    avg: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sensibly sized design (normalised coordinates).
    fn decent_design() -> Vec<f64> {
        let mut x = vec![0.5; CHARGE_PUMP_DIM];
        // Wide, long mirrors with matched ratios; wide switches; long bias devices.
        for device in [
            Device::UpMirrorDiode,
            Device::UpMirrorOut,
            Device::DownMirrorDiode,
            Device::DownMirrorOut,
        ] {
            x[2 * device as usize] = 1.0; // width
            x[2 * device as usize + 1] = 0.5; // length
        }
        for device in [Device::UpCascode, Device::DownCascode] {
            x[2 * device as usize] = 1.0;
            x[2 * device as usize + 1] = 0.3;
        }
        for device in [Device::UpSwitch, Device::DownSwitch] {
            x[2 * device as usize] = 0.9;
            x[2 * device as usize + 1] = 0.05;
        }
        for device in [Device::UpDummy, Device::DownDummy] {
            x[2 * device as usize] = 0.62;
            x[2 * device as usize + 1] = 0.03;
        }
        for device in [Device::BiasP, Device::BiasN, Device::RefBuffer] {
            x[2 * device as usize] = 0.7;
            x[2 * device as usize + 1] = 0.9;
        }
        for device in [Device::AmpInput, Device::AmpTail] {
            x[2 * device as usize] = 0.8;
            x[2 * device as usize + 1] = 0.5;
        }
        x
    }

    #[test]
    fn evaluation_is_finite_everywhere() {
        let bench = ChargePump::new();
        for x in [
            vec![0.01; CHARGE_PUMP_DIM],
            vec![0.5; CHARGE_PUMP_DIM],
            vec![0.99; CHARGE_PUMP_DIM],
        ] {
            let p = bench.evaluate_normalized(&x);
            assert!(p.fom.is_finite() && p.fom >= 0.0);
            assert!(p.diff1.is_finite() && p.diff1 >= 0.0);
            assert!(p.deviation.is_finite() && p.deviation >= 0.0);
        }
    }

    #[test]
    fn a_good_design_is_feasible_with_small_fom() {
        let bench = ChargePump::new();
        let p = bench.evaluate_normalized(&decent_design());
        assert!(p.feasible(), "expected a feasible design, got {p:?}");
        assert!(p.fom < 10.0, "FOM {} unexpectedly large", p.fom);
    }

    #[test]
    fn fom_matches_equation_16() {
        let bench = ChargePump::new();
        let p = bench.evaluate_normalized(&decent_design());
        let expected = 0.3 * p.diff_total() + 0.5 * p.deviation;
        assert!((p.fom - expected).abs() < 1e-9);
    }

    #[test]
    fn poor_mirror_matching_increases_deviation() {
        let bench = ChargePump::new();
        let good = decent_design();
        let mut bad = good.clone();
        // Shrink the UP output mirror so its ratio is far from the diode's.
        bad[2 * Device::UpMirrorOut as usize] = 0.1;
        let p_good = bench.evaluate_normalized(&good);
        let p_bad = bench.evaluate_normalized(&bad);
        assert!(p_bad.deviation > p_good.deviation);
    }

    #[test]
    fn weak_cascode_increases_spread() {
        // A minimum-size cascode both loses output resistance (more channel-length
        // modulation reaches the output) and costs compliance headroom, so the
        // UP-current spread over the sweep must grow.
        let bench = ChargePump::new();
        let good = decent_design();
        let mut weak = good.clone();
        weak[2 * Device::UpCascode as usize] = 0.0;
        weak[2 * Device::UpCascode as usize + 1] = 0.0;
        let p_good = bench.evaluate_normalized(&good);
        let p_weak = bench.evaluate_normalized(&weak);
        assert!(
            p_weak.diff1 + p_weak.diff2 > p_good.diff1 + p_good.diff2,
            "weak-cascode spread {} vs good {}",
            p_weak.diff1 + p_weak.diff2,
            p_good.diff1 + p_good.diff2
        );
    }

    #[test]
    fn corner_restriction_reduces_worst_case() {
        // Evaluating only the nominal corner can never be worse than the full 18.
        let full = ChargePump::new();
        let nominal = ChargePump::with_corners(vec![PvtCorner::nominal()]);
        let x = decent_design();
        let p_full = full.evaluate_normalized(&x);
        let p_nom = nominal.evaluate_normalized(&x);
        assert!(p_nom.deviation <= p_full.deviation + 1e-12);
        assert!(p_nom.diff1 <= p_full.diff1 + 1e-12);
    }

    #[test]
    fn bounds_have_the_right_shape() {
        let bench = ChargePump::new();
        let b = bench.bounds();
        assert_eq!(b.len(), CHARGE_PUMP_DIM);
        assert!(b.iter().all(|(lo, hi)| *lo > 0.0 && hi > lo));
    }

    #[test]
    fn there_are_18_corners_by_default() {
        assert_eq!(ChargePump::new().corners().len(), 18);
    }

    #[test]
    fn try_evaluate_agrees_bit_for_bit_with_evaluate() {
        let bench = ChargePump::new();
        for x in [
            vec![0.01; CHARGE_PUMP_DIM],
            decent_design(),
            vec![0.99; CHARGE_PUMP_DIM],
        ] {
            let phys = bench.denormalize(&x);
            assert_eq!(bench.try_evaluate(&phys).unwrap(), bench.evaluate(&phys));
        }
    }

    #[test]
    fn a_corner_sweep_reproduces_the_monolithic_evaluation() {
        // Folding per-corner Testbench measurements over the bench's own
        // corner list must be bit-identical to the hand-rolled loop.
        let bench = ChargePump::new();
        let phys = bench.denormalize(&decent_design());
        let mut worst = ChargePumpCornerMeasurement::zero();
        for (ci, corner) in bench.corners().iter().enumerate() {
            let m = bench
                .measure(&phys, &CornerContext::new(*corner, ci))
                .unwrap();
            worst = worst.fold_worst(&m);
        }
        assert_eq!(
            ChargePumpPerformance::from_worst_corners(&worst),
            bench.evaluate(&phys)
        );
    }

    #[test]
    fn corner_measurement_depends_on_the_corner_index() {
        // The deterministic mismatch sign is seeded by the corner's index,
        // so the context must carry it for sweeps to stay bit-identical.
        let bench = ChargePump::new();
        let phys = bench.denormalize(&decent_design());
        let corner = bench.corners()[0];
        let at0 = bench
            .measure(&phys, &CornerContext::new(corner, 0))
            .unwrap();
        let at5 = bench
            .measure(&phys, &CornerContext::new(corner, 5))
            .unwrap();
        assert_ne!(at0, at5);
    }
}
