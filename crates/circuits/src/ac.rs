//! Small-signal AC analysis: complex MNA sweeps and Bode metrics.

use serde::{Deserialize, Serialize};

use crate::complex::Complex;
use crate::dc::DcSolution;
use crate::netlist::{Circuit, Element, NodeId, GROUND};

/// An element of a linear small-signal circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SmallSignalElement {
    /// Conductance (1/Ω) between two nodes.
    Conductance {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Conductance in siemens.
        siemens: f64,
    },
    /// Capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Voltage-controlled current source (small-signal transconductance).
    Vccs {
        /// Output positive terminal.
        out_plus: NodeId,
        /// Output negative terminal.
        out_minus: NodeId,
        /// Positive controlling node.
        ctrl_plus: NodeId,
        /// Negative controlling node.
        ctrl_minus: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
}

/// A linear(ised) small-signal circuit with a single AC input port.
///
/// The circuit is excited by a unit AC voltage source at `input` and the transfer
/// function is read at `output`; [`AcAnalysis`] sweeps it over frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmallSignalCircuit {
    node_count: usize,
    elements: Vec<SmallSignalElement>,
    input: NodeId,
    output: NodeId,
}

impl SmallSignalCircuit {
    /// Creates an empty small-signal circuit with `node_count` nodes (including
    /// ground), an AC source at `input` and the response read at `output`.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` is out of range or is the ground node.
    pub fn new(node_count: usize, input: NodeId, output: NodeId) -> Self {
        assert!(input > 0 && input < node_count, "invalid input node");
        assert!(output > 0 && output < node_count, "invalid output node");
        SmallSignalCircuit {
            node_count,
            elements: Vec::new(),
            input,
            output,
        }
    }

    /// Adds an element.
    ///
    /// # Panics
    ///
    /// Panics if the element references an out-of-range node.
    pub fn add(&mut self, element: SmallSignalElement) {
        let check = |n: NodeId| assert!(n < self.node_count, "node {n} out of range");
        match &element {
            SmallSignalElement::Conductance { a, b, .. }
            | SmallSignalElement::Capacitor { a, b, .. } => {
                check(*a);
                check(*b);
            }
            SmallSignalElement::Vccs {
                out_plus,
                out_minus,
                ctrl_plus,
                ctrl_minus,
                ..
            } => {
                check(*out_plus);
                check(*out_minus);
                check(*ctrl_plus);
                check(*ctrl_minus);
            }
        }
        self.elements.push(element);
    }

    /// Number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The AC input node.
    pub fn input(&self) -> NodeId {
        self.input
    }

    /// The output node whose transfer function is measured.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Elements of the circuit.
    pub fn elements(&self) -> &[SmallSignalElement] {
        &self.elements
    }

    /// Linearises a nonlinear [`Circuit`] around a DC operating point.
    ///
    /// Resistors become conductances, capacitors stay capacitors, independent
    /// voltage sources become AC shorts (their nodes are tied to ground through a
    /// very large conductance), independent current sources become opens, and each
    /// MOSFET contributes its `gm`, `gds`, `cgs`, `cgd` and `cdb` from the operating
    /// point.  The AC excitation is applied at `input` and read at `output`.
    ///
    /// # Panics
    ///
    /// Panics if the number of entries in `dc.mosfet_params` does not match the
    /// number of MOSFETs in the circuit.
    pub fn linearize(circuit: &Circuit, dc: &DcSolution, input: NodeId, output: NodeId) -> Self {
        let mut ss = SmallSignalCircuit::new(circuit.node_count(), input, output);
        let mut mos_idx = 0;
        for element in circuit.elements() {
            match element {
                Element::Resistor { a, b, ohms } => ss.add(SmallSignalElement::Conductance {
                    a: *a,
                    b: *b,
                    siemens: 1.0 / ohms,
                }),
                Element::Capacitor { a, b, farads } => ss.add(SmallSignalElement::Capacitor {
                    a: *a,
                    b: *b,
                    farads: *farads,
                }),
                Element::CurrentSource { .. } => {}
                Element::VoltageSource { plus, minus, .. } => {
                    // AC short: an ideal DC supply has zero small-signal impedance.
                    // Skip the AC input port itself (it is driven by the analysis).
                    if *plus != input && *minus != input {
                        ss.add(SmallSignalElement::Conductance {
                            a: *plus,
                            b: *minus,
                            siemens: 1e9,
                        });
                    }
                }
                Element::Vccs {
                    out_plus,
                    out_minus,
                    ctrl_plus,
                    ctrl_minus,
                    gm,
                } => ss.add(SmallSignalElement::Vccs {
                    out_plus: *out_plus,
                    out_minus: *out_minus,
                    ctrl_plus: *ctrl_plus,
                    ctrl_minus: *ctrl_minus,
                    gm: *gm,
                }),
                Element::Mosfet {
                    drain,
                    gate,
                    source,
                    ..
                } => {
                    let p = dc.mosfet_params[mos_idx];
                    mos_idx += 1;
                    ss.add(SmallSignalElement::Vccs {
                        out_plus: *drain,
                        out_minus: *source,
                        ctrl_plus: *gate,
                        ctrl_minus: *source,
                        gm: p.gm,
                    });
                    ss.add(SmallSignalElement::Conductance {
                        a: *drain,
                        b: *source,
                        siemens: p.gds,
                    });
                    ss.add(SmallSignalElement::Capacitor {
                        a: *gate,
                        b: *source,
                        farads: p.cgs,
                    });
                    ss.add(SmallSignalElement::Capacitor {
                        a: *gate,
                        b: *drain,
                        farads: p.cgd,
                    });
                    ss.add(SmallSignalElement::Capacitor {
                        a: *drain,
                        b: GROUND,
                        farads: p.cdb,
                    });
                }
            }
        }
        assert_eq!(
            mos_idx,
            dc.mosfet_params.len(),
            "DC solution does not match the circuit's MOSFET count"
        );
        ss
    }

    /// Solves the circuit at angular frequency `omega` (rad/s) and returns the
    /// complex transfer function `V(output) / V(input)`.
    ///
    /// Returns `None` if the complex MNA matrix is singular at this frequency.
    pub fn transfer_function(&self, omega: f64) -> Option<Complex> {
        // Unknowns: node voltages 1..n-1, plus the branch current of the input source.
        let n = self.node_count - 1;
        let dim = n + 1;
        let mut a = vec![vec![Complex::zero(); dim]; dim];
        let mut b = vec![Complex::zero(); dim];
        let idx = |node: NodeId| -> Option<usize> {
            if node == GROUND {
                None
            } else {
                Some(node - 1)
            }
        };

        let stamp_admittance = |a: &mut Vec<Vec<Complex>>, n1: NodeId, n2: NodeId, y: Complex| {
            let i1 = idx(n1);
            let i2 = idx(n2);
            if let Some(i) = i1 {
                a[i][i] += y;
            }
            if let Some(j) = i2 {
                a[j][j] += y;
            }
            if let (Some(i), Some(j)) = (i1, i2) {
                a[i][j] += -y;
                a[j][i] += -y;
            }
        };

        for e in &self.elements {
            match e {
                SmallSignalElement::Conductance {
                    a: n1,
                    b: n2,
                    siemens,
                } => {
                    stamp_admittance(&mut a, *n1, *n2, Complex::real(*siemens));
                }
                SmallSignalElement::Capacitor {
                    a: n1,
                    b: n2,
                    farads,
                } => {
                    stamp_admittance(&mut a, *n1, *n2, Complex::new(0.0, omega * farads));
                }
                SmallSignalElement::Vccs {
                    out_plus,
                    out_minus,
                    ctrl_plus,
                    ctrl_minus,
                    gm,
                } => {
                    let op = idx(*out_plus);
                    let om = idx(*out_minus);
                    let cp = idx(*ctrl_plus);
                    let cm = idx(*ctrl_minus);
                    for (out, s_out) in [(op, 1.0), (om, -1.0)] {
                        let Some(o) = out else { continue };
                        for (ctrl, s_ctrl) in [(cp, 1.0), (cm, -1.0)] {
                            let Some(c) = ctrl else { continue };
                            a[o][c] += Complex::real(s_out * s_ctrl * gm);
                        }
                    }
                }
            }
        }

        // Unit AC voltage source at the input node (branch current is unknown `n`).
        let input_idx = idx(self.input).expect("input is not ground");
        a[input_idx][n] += Complex::one();
        a[n][input_idx] += Complex::one();
        b[n] = Complex::one();

        let x = solve_complex(a, b)?;
        let vout = match idx(self.output) {
            Some(i) => x[i],
            None => Complex::zero(),
        };
        let vin = x[input_idx];
        if vin.abs() < 1e-30 {
            return None;
        }
        Some(vout / vin)
    }
}

/// Gaussian elimination with partial pivoting for a dense complex system.
fn solve_complex(mut a: Vec<Vec<Complex>>, mut b: Vec<Complex>) -> Option<Vec<Complex>> {
    let n = b.len();
    for k in 0..n {
        // Pivot on the largest magnitude in column k.
        let mut pivot = k;
        let mut best = a[k][k].abs();
        for i in (k + 1)..n {
            let m = a[i][k].abs();
            if m > best {
                best = m;
                pivot = i;
            }
        }
        if best < 1e-30 || !best.is_finite() {
            return None;
        }
        a.swap(k, pivot);
        b.swap(k, pivot);
        let akk = a[k][k];
        for i in (k + 1)..n {
            let factor = a[i][k] / akk;
            if factor.abs() == 0.0 {
                continue;
            }
            for j in k..n {
                let delta = factor * a[k][j];
                a[i][j] = a[i][j] - delta;
            }
            b[i] = b[i] - factor * b[k];
        }
    }
    let mut x = vec![Complex::zero(); n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum = sum - a[i][j] * x[j];
        }
        x[i] = sum / a[i][i];
        if !x[i].is_finite() {
            return None;
        }
    }
    Some(x)
}

/// A logarithmic frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcSweep {
    /// Start frequency in hertz.
    pub start_hz: f64,
    /// Stop frequency in hertz.
    pub stop_hz: f64,
    /// Number of points per decade.
    pub points_per_decade: usize,
}

impl Default for AcSweep {
    fn default() -> Self {
        AcSweep {
            start_hz: 1.0,
            stop_hz: 10e9,
            points_per_decade: 20,
        }
    }
}

impl AcSweep {
    /// The list of frequencies (hertz) covered by the sweep.
    pub fn frequencies(&self) -> Vec<f64> {
        let decades = (self.stop_hz / self.start_hz).log10();
        let total = (decades * self.points_per_decade as f64).ceil() as usize + 1;
        (0..total)
            .map(|i| self.start_hz * 10f64.powf(i as f64 / self.points_per_decade as f64))
            .filter(|f| *f <= self.stop_hz * 1.0000001)
            .collect()
    }
}

/// Open-loop frequency-response metrics extracted from an AC sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodeMetrics {
    /// Low-frequency gain in dB.
    pub dc_gain_db: f64,
    /// Unity-gain frequency in Hz (0 when the gain never reaches unity).
    pub unity_gain_freq_hz: f64,
    /// Phase margin in degrees (meaningless when `unity_gain_freq_hz == 0`).
    pub phase_margin_deg: f64,
    /// `true` when the gain actually crossed unity inside the sweep.
    pub crossed_unity: bool,
}

/// AC analysis: sweeps a [`SmallSignalCircuit`] and extracts [`BodeMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AcAnalysis {
    /// The frequency sweep to run.
    pub sweep: AcSweep,
}

impl AcAnalysis {
    /// Creates an analysis with the given sweep.
    pub fn new(sweep: AcSweep) -> Self {
        AcAnalysis { sweep }
    }

    /// Runs the sweep, returning `(frequency, transfer function)` pairs.  Frequencies
    /// where the system is singular are skipped.
    pub fn run(&self, circuit: &SmallSignalCircuit) -> Vec<(f64, Complex)> {
        self.sweep
            .frequencies()
            .into_iter()
            .filter_map(|f| {
                let omega = 2.0 * std::f64::consts::PI * f;
                circuit.transfer_function(omega).map(|h| (f, h))
            })
            .collect()
    }

    /// Runs the sweep and extracts gain / UGF / phase margin.
    ///
    /// Returns `None` when the sweep produced no valid points.
    pub fn bode_metrics(&self, circuit: &SmallSignalCircuit) -> Option<BodeMetrics> {
        let response = self.run(circuit);
        if response.is_empty() {
            return None;
        }
        let dc_gain = response[0].1.abs();
        let dc_gain_db = 20.0 * dc_gain.max(1e-30).log10();

        // Find the unity-gain crossing by scanning for |H| dropping below 1, carrying
        // an unwrapped phase along the sweep so that phase excursions past ±180° do
        // not corrupt the phase-margin estimate.
        let mut ugf = 0.0;
        let mut phase_at_ugf = response[0].1.arg();
        let mut crossed = false;
        let mut prev_phase = response[0].1.arg();
        for w in response.windows(2) {
            let (f1, h1) = w[0];
            let (f2, h2) = w[1];
            let (m1, m2) = (h1.abs(), h2.abs());
            let p1 = unwrap_phase(h1.arg(), prev_phase);
            let p2 = unwrap_phase(h2.arg(), p1);
            prev_phase = p1;
            if m1 >= 1.0 && m2 < 1.0 && !crossed {
                // Log-log interpolation of the crossing frequency.
                let t = (m1.ln() - 0.0) / (m1.ln() - m2.ln());
                ugf = f1 * (f2 / f1).powf(t);
                phase_at_ugf = p1 + (p2 - p1) * t;
                crossed = true;
                break;
            }
        }
        let phase_margin_deg = if crossed {
            180.0 + phase_at_ugf.to_degrees()
        } else {
            180.0
        };
        Some(BodeMetrics {
            dc_gain_db,
            unity_gain_freq_hz: ugf,
            phase_margin_deg,
            crossed_unity: crossed,
        })
    }
}

/// Shifts `phase` by multiples of 2π so that it is within π of `reference`.
fn unwrap_phase(mut phase: f64, reference: f64) -> f64 {
    use std::f64::consts::PI;
    while phase - reference > PI {
        phase -= 2.0 * PI;
    }
    while reference - phase > PI {
        phase += 2.0 * PI;
    }
    phase
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-pole RC low-pass filter: R from input to output, C from output to ground.
    fn rc_lowpass(r: f64, c: f64) -> SmallSignalCircuit {
        let mut ss = SmallSignalCircuit::new(3, 1, 2);
        ss.add(SmallSignalElement::Conductance {
            a: 1,
            b: 2,
            siemens: 1.0 / r,
        });
        ss.add(SmallSignalElement::Capacitor {
            a: 2,
            b: GROUND,
            farads: c,
        });
        ss
    }

    #[test]
    fn rc_lowpass_matches_analytic_response() {
        let (r, c) = (1e3, 1e-9);
        let ss = rc_lowpass(r, c);
        let f_c = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        // At the corner frequency the magnitude is 1/sqrt(2) and phase -45°.
        let h = ss
            .transfer_function(2.0 * std::f64::consts::PI * f_c)
            .unwrap();
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((h.arg().to_degrees() + 45.0).abs() < 0.5);
        // Well below the corner the gain is ~1, far above it falls 20 dB/decade.
        let low = ss
            .transfer_function(2.0 * std::f64::consts::PI * f_c / 1000.0)
            .unwrap();
        assert!((low.abs() - 1.0).abs() < 1e-3);
        let hi = ss
            .transfer_function(2.0 * std::f64::consts::PI * f_c * 100.0)
            .unwrap();
        assert!((20.0 * hi.abs().log10() + 40.0).abs() < 0.5);
    }

    #[test]
    fn single_pole_amplifier_bode_metrics() {
        // gm into an RC load: A0 = gm*R, pole at 1/(2πRC), GBW = gm/(2πC).
        let gm = 1e-3;
        let r = 100e3;
        let c = 10e-12;
        let mut ss = SmallSignalCircuit::new(3, 1, 2);
        ss.add(SmallSignalElement::Vccs {
            out_plus: GROUND,
            out_minus: 2,
            ctrl_plus: 1,
            ctrl_minus: GROUND,
            gm,
        });
        ss.add(SmallSignalElement::Conductance {
            a: 2,
            b: GROUND,
            siemens: 1.0 / r,
        });
        ss.add(SmallSignalElement::Capacitor {
            a: 2,
            b: GROUND,
            farads: c,
        });
        let metrics = AcAnalysis::new(AcSweep {
            start_hz: 10.0,
            stop_hz: 1e9,
            points_per_decade: 40,
        })
        .bode_metrics(&ss)
        .unwrap();
        let a0_db = 20.0 * (gm * r).log10();
        assert!((metrics.dc_gain_db - a0_db).abs() < 0.2);
        let gbw = gm / (2.0 * std::f64::consts::PI * c);
        assert!(
            (metrics.unity_gain_freq_hz - gbw).abs() / gbw < 0.05,
            "ugf {} vs gbw {}",
            metrics.unity_gain_freq_hz,
            gbw
        );
        // Single-pole system: phase margin ≈ 90°.
        assert!((metrics.phase_margin_deg - 90.0).abs() < 3.0);
        assert!(metrics.crossed_unity);
    }

    #[test]
    fn sweep_frequencies_are_log_spaced_and_bounded() {
        let sweep = AcSweep {
            start_hz: 1.0,
            stop_hz: 1e3,
            points_per_decade: 10,
        };
        let f = sweep.frequencies();
        assert_eq!(f.len(), 31);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f.last().unwrap() - 1000.0).abs() / 1000.0 < 1e-9);
    }

    #[test]
    fn attenuator_never_crosses_unity() {
        // A resistive divider has gain < 1 at all frequencies.
        let mut ss = SmallSignalCircuit::new(3, 1, 2);
        ss.add(SmallSignalElement::Conductance {
            a: 1,
            b: 2,
            siemens: 1e-3,
        });
        ss.add(SmallSignalElement::Conductance {
            a: 2,
            b: GROUND,
            siemens: 1e-3,
        });
        let metrics = AcAnalysis::default().bode_metrics(&ss).unwrap();
        assert!(!metrics.crossed_unity);
        assert_eq!(metrics.unity_gain_freq_hz, 0.0);
        assert!((metrics.dc_gain_db + 6.02).abs() < 0.1);
    }
}
