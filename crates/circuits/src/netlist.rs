//! Circuit netlists: nodes and elements.

use serde::{Deserialize, Serialize};

use crate::mosfet::MosTransistor;

/// Index of a circuit node.  Node [`GROUND`] (index 0) is the reference node.
pub type NodeId = usize;

/// The ground (reference) node.
pub const GROUND: NodeId = 0;

/// A circuit element.
///
/// Positive current through two-terminal elements flows from the first node to the
/// second node through the element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Linear resistor between nodes `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Linear capacitor between nodes `a` and `b` (open circuit in DC).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be non-negative).
        farads: f64,
    },
    /// Independent DC current source pushing `amps` from node `from` into node `to`
    /// (current exits the source at `to`).
    CurrentSource {
        /// Node the current is drawn from.
        from: NodeId,
        /// Node the current is injected into.
        to: NodeId,
        /// Source current in amperes.
        amps: f64,
    },
    /// Independent DC voltage source: `V(plus) - V(minus) = volts`.
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Voltage-controlled current source: a current `gm · (V(ctrl_plus) - V(ctrl_minus))`
    /// flows from `out_plus` to `out_minus` through the source.
    Vccs {
        /// Output positive terminal (current leaves here into the circuit ... ).
        out_plus: NodeId,
        /// Output negative terminal.
        out_minus: NodeId,
        /// Positive controlling node.
        ctrl_plus: NodeId,
        /// Negative controlling node.
        ctrl_minus: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// A level-1 MOSFET.
    Mosfet {
        /// Drain node.
        drain: NodeId,
        /// Gate node.
        gate: NodeId,
        /// Source node.
        source: NodeId,
        /// Device geometry and model.
        transistor: MosTransistor,
    },
}

/// A circuit netlist: a node count and a list of elements.
///
/// # Example
///
/// ```
/// use nnbo_circuits::{Circuit, Element, GROUND};
///
/// // A 1 V source driving a 1 kΩ / 1 kΩ divider.
/// let mut ckt = Circuit::new();
/// let vin = ckt.add_node();
/// let mid = ckt.add_node();
/// ckt.add(Element::VoltageSource { plus: vin, minus: GROUND, volts: 1.0 });
/// ckt.add(Element::Resistor { a: vin, b: mid, ohms: 1e3 });
/// ckt.add(Element::Resistor { a: mid, b: GROUND, ohms: 1e3 });
/// assert_eq!(ckt.node_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    node_count: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates a new node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_count;
        self.node_count += 1;
        id
    }

    /// Allocates `n` new nodes and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds an element to the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the element references a node that has not been allocated, if a
    /// resistor has a non-positive resistance or a capacitor a negative capacitance.
    pub fn add(&mut self, element: Element) {
        let check = |n: NodeId| {
            assert!(
                n < self.node_count,
                "element references unallocated node {n} (node count {})",
                self.node_count
            );
        };
        match &element {
            Element::Resistor { a, b, ohms } => {
                check(*a);
                check(*b);
                assert!(*ohms > 0.0, "resistance must be positive");
            }
            Element::Capacitor { a, b, farads } => {
                check(*a);
                check(*b);
                assert!(*farads >= 0.0, "capacitance must be non-negative");
            }
            Element::CurrentSource { from, to, .. } => {
                check(*from);
                check(*to);
            }
            Element::VoltageSource { plus, minus, .. } => {
                check(*plus);
                check(*minus);
            }
            Element::Vccs {
                out_plus,
                out_minus,
                ctrl_plus,
                ctrl_minus,
                ..
            } => {
                check(*out_plus);
                check(*out_minus);
                check(*ctrl_plus);
                check(*ctrl_minus);
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                ..
            } => {
                check(*drain);
                check(*gate);
                check(*source);
            }
        }
        self.elements.push(element);
    }

    /// Total number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The elements of the netlist.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of independent voltage sources (each adds one branch-current unknown
    /// to the MNA system).
    pub fn voltage_source_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
    }

    /// Number of MOSFETs in the netlist.
    pub fn mosfet_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Mosfet { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_allocation_is_sequential() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node_count(), 1);
        let a = ckt.add_node();
        let b = ckt.add_node();
        assert_eq!((a, b), (1, 2));
        assert_eq!(ckt.add_nodes(3), vec![3, 4, 5]);
        assert_eq!(ckt.node_count(), 6);
    }

    #[test]
    fn counts_voltage_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: a,
            minus: GROUND,
            volts: 1.0,
        });
        ckt.add(Element::Resistor {
            a,
            b: GROUND,
            ohms: 100.0,
        });
        assert_eq!(ckt.voltage_source_count(), 1);
        assert_eq!(ckt.mosfet_count(), 0);
        assert_eq!(ckt.elements().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unallocated node")]
    fn unallocated_node_is_rejected() {
        let mut ckt = Circuit::new();
        ckt.add(Element::Resistor {
            a: 5,
            b: GROUND,
            ohms: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn non_positive_resistance_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.add_node();
        ckt.add(Element::Resistor {
            a,
            b: GROUND,
            ohms: 0.0,
        });
    }
}
