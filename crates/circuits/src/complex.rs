//! Minimal complex-number arithmetic for AC analysis.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number `re + j·im` with `f64` components.
///
/// The standard library has no complex type and the workspace avoids external
/// numeric crates, so AC analysis carries its own small implementation.
///
/// # Example
///
/// ```
/// use nnbo_circuits::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert!((z.abs() - 5.0).abs() < 1e-12);
/// let w = z * Complex::j();
/// assert!((w.re + 4.0).abs() < 1e-12 && (w.im - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// One.
    pub const fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// The imaginary unit `j`.
    pub const fn j() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// A purely real complex number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Builds from polar form `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse.
    ///
    /// Returns a non-finite result for zero input (consistent with `1.0 / 0.0`).
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal is intentional
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        let prod = a * b;
        assert!((prod.re - (-3.0 - 1.0)).abs() < 1e-12);
        assert!((prod.im - (0.5 - 6.0)).abs() < 1e-12);
    }

    #[test]
    fn division_and_reciprocal() {
        let a = Complex::new(2.0, -1.0);
        let one = a * a.recip();
        assert!((one.re - 1.0).abs() < 1e-12);
        assert!(one.im.abs() < 1e-12);
        let q = Complex::new(4.0, 2.0) / Complex::new(2.0, 0.0);
        assert!((q.re - 2.0).abs() < 1e-12 && (q.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn conjugate_and_magnitude() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!((z.abs_sq() - 25.0).abs() < 1e-12);
        assert!(z.is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
    }
}
