//! Process / voltage / temperature corners.

use serde::{Deserialize, Serialize};

/// Process corner of a CMOS technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Process {
    /// Slow NMOS / slow PMOS.
    SlowSlow,
    /// Typical / typical.
    TypicalTypical,
    /// Fast NMOS / fast PMOS.
    FastFast,
}

impl Process {
    /// Multiplicative shift of the process transconductance `kp` for this corner.
    pub fn kp_factor(self) -> f64 {
        match self {
            Process::SlowSlow => 0.85,
            Process::TypicalTypical => 1.0,
            Process::FastFast => 1.15,
        }
    }

    /// Additive shift of the threshold voltage in volts.
    pub fn vth_shift(self) -> f64 {
        match self {
            Process::SlowSlow => 0.04,
            Process::TypicalTypical => 0.0,
            Process::FastFast => -0.04,
        }
    }

    /// All three process corners.
    pub fn all() -> [Process; 3] {
        [
            Process::SlowSlow,
            Process::TypicalTypical,
            Process::FastFast,
        ]
    }
}

impl std::fmt::Display for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Process::SlowSlow => "SS",
            Process::TypicalTypical => "TT",
            Process::FastFast => "FF",
        };
        write!(f, "{s}")
    }
}

/// One process / voltage / temperature corner.
///
/// The charge-pump experiment of the paper (Table II) evaluates every design at 18
/// PVT corners and optimizes the worst case; [`PvtCorner::standard_18`] reproduces
/// that corner count as 3 process × 3 supply × 2 temperature combinations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PvtCorner {
    /// Process corner.
    pub process: Process,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Junction temperature in °C.
    pub temperature: f64,
}

impl PvtCorner {
    /// The nominal corner of a 1.1 V, 40 nm-like technology.
    pub fn nominal() -> Self {
        PvtCorner {
            process: Process::TypicalTypical,
            vdd: 1.1,
            temperature: 27.0,
        }
    }

    /// The standard 18-corner set used by the charge-pump experiment:
    /// {SS, TT, FF} × {0.99 V, 1.10 V, 1.21 V} × {-40 °C, 125 °C}.
    pub fn standard_18() -> Vec<PvtCorner> {
        let mut corners = Vec::with_capacity(18);
        for process in Process::all() {
            for vdd in [0.99, 1.10, 1.21] {
                for temperature in [-40.0, 125.0] {
                    corners.push(PvtCorner {
                        process,
                        vdd,
                        temperature,
                    });
                }
            }
        }
        corners
    }

    /// Mobility degradation factor relative to 27 °C (`(T/300K)^-1.5`).
    pub fn mobility_factor(&self) -> f64 {
        let t_kelvin = self.temperature + 273.15;
        (t_kelvin / 300.15).powf(-1.5)
    }

    /// Threshold-voltage shift relative to 27 °C (≈ -1 mV/°C) plus the process shift.
    pub fn vth_shift(&self) -> f64 {
        self.process.vth_shift() - 1e-3 * (self.temperature - 27.0)
    }

    /// Combined multiplicative factor on the process transconductance.
    pub fn kp_factor(&self) -> f64 {
        self.process.kp_factor() * self.mobility_factor()
    }
}

impl std::fmt::Display for PvtCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{:.2}V/{:+.0}C",
            self.process, self.vdd, self.temperature
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_18_standard_corners() {
        let corners = PvtCorner::standard_18();
        assert_eq!(corners.len(), 18);
        for (i, a) in corners.iter().enumerate() {
            for b in corners.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn hot_corner_degrades_mobility() {
        let hot = PvtCorner {
            process: Process::TypicalTypical,
            vdd: 1.1,
            temperature: 125.0,
        };
        let cold = PvtCorner {
            process: Process::TypicalTypical,
            vdd: 1.1,
            temperature: -40.0,
        };
        assert!(hot.mobility_factor() < 1.0);
        assert!(cold.mobility_factor() > 1.0);
    }

    #[test]
    fn fast_corner_lowers_threshold_and_raises_kp() {
        assert!(Process::FastFast.vth_shift() < 0.0);
        assert!(Process::FastFast.kp_factor() > Process::SlowSlow.kp_factor());
        let nominal = PvtCorner::nominal();
        assert!((nominal.kp_factor() - 1.0).abs() < 0.01);
        assert!(nominal.vth_shift().abs() < 1e-3);
    }

    #[test]
    fn display_is_compact() {
        let c = PvtCorner::nominal();
        assert_eq!(format!("{c}"), "TT/1.10V/+27C");
    }
}
