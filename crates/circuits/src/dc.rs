//! DC operating-point analysis (Newton–Raphson with gmin stepping).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::mna::MnaSystem;
use crate::mosfet::SmallSignalParams;
use crate::netlist::{Circuit, Element, NodeId};

/// Error produced by the DC solver.
#[derive(Debug, Clone, PartialEq)]
pub enum DcError {
    /// The Newton iteration did not converge within the iteration budget, even with
    /// gmin stepping.
    NoConvergence {
        /// Residual voltage change of the last iteration.
        last_delta: f64,
    },
    /// The linearised MNA matrix was singular (e.g. floating nodes).
    SingularSystem,
}

impl fmt::Display for DcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcError::NoConvergence { last_delta } => {
                write!(
                    f,
                    "newton iteration did not converge (last delta {last_delta:e} V)"
                )
            }
            DcError::SingularSystem => write!(f, "singular MNA system (check for floating nodes)"),
        }
    }
}

impl Error for DcError {}

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcSolution {
    /// Node voltages indexed by node id (ground is entry 0 and always `0.0`).
    pub voltages: Vec<f64>,
    /// Small-signal parameters of every MOSFET, in netlist order.
    pub mosfet_params: Vec<SmallSignalParams>,
    /// Number of Newton iterations used (summed over gmin steps).
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node]
    }
}

/// Configuration and entry point of the Newton–Raphson DC solver.
///
/// The solver follows the classic SPICE recipe: each nonlinear device is replaced by
/// its linearised companion model (a conductance, a transconductance and an
/// equivalent current source evaluated at the present voltage guess), the resulting
/// linear MNA system is solved, and the process repeats until the node voltages stop
/// moving.  If plain Newton fails, a decreasing sequence of gmin conductances to
/// ground is applied (gmin stepping).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcAnalysis {
    /// Maximum Newton iterations per gmin step.
    pub max_iterations: usize,
    /// Convergence tolerance on the largest node-voltage update, in volts.
    pub tolerance: f64,
    /// Maximum allowed voltage update per iteration (damping), in volts.
    pub damping: f64,
    /// Sequence of gmin values to try; the last entry should be the final
    /// (smallest) gmin.
    pub gmin_steps: Vec<f64>,
}

impl Default for DcAnalysis {
    fn default() -> Self {
        DcAnalysis {
            max_iterations: 200,
            tolerance: 1e-9,
            damping: 0.5,
            gmin_steps: vec![1e-3, 1e-5, 1e-7, 1e-9, 1e-12],
        }
    }
}

impl DcAnalysis {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the DC operating point of `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`DcError::SingularSystem`] if the linearised system cannot be solved
    /// and [`DcError::NoConvergence`] if the Newton iteration stalls.
    pub fn solve(&self, circuit: &Circuit) -> Result<DcSolution, DcError> {
        let n = circuit.node_count();
        let mut voltages = vec![0.0; n];
        // Start all nodes at a mid-rail-ish guess derived from the largest source.
        let vmax = circuit
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VoltageSource { volts, .. } => Some(volts.abs()),
                _ => None,
            })
            .fold(0.0_f64, f64::max);
        for v in voltages.iter_mut().skip(1) {
            *v = vmax / 2.0;
        }

        let mut total_iters = 0;
        let mut converged = false;
        let mut last_delta = f64::INFINITY;
        for &gmin in &self.gmin_steps {
            let mut step_converged = false;
            for _ in 0..self.max_iterations {
                total_iters += 1;
                let (new_voltages, _params) = self
                    .linearized_solve(circuit, &voltages, gmin)
                    .ok_or(DcError::SingularSystem)?;
                let mut delta: f64 = 0.0;
                for (old, new) in voltages.iter_mut().skip(1).zip(new_voltages.iter().skip(1)) {
                    let mut step = new - *old;
                    if step.abs() > self.damping {
                        step = step.signum() * self.damping;
                    }
                    delta = delta.max(step.abs());
                    *old += step;
                }
                last_delta = delta;
                if delta < self.tolerance {
                    step_converged = true;
                    break;
                }
            }
            converged = step_converged;
        }
        if !converged {
            return Err(DcError::NoConvergence { last_delta });
        }

        // One final linearisation at the converged point to report device parameters.
        let (_, params) = self
            .linearized_solve(
                circuit,
                &voltages,
                *self.gmin_steps.last().unwrap_or(&1e-12),
            )
            .ok_or(DcError::SingularSystem)?;
        Ok(DcSolution {
            voltages,
            mosfet_params: params,
            iterations: total_iters,
        })
    }

    /// Builds and solves the MNA system linearised around `voltages`.
    fn linearized_solve(
        &self,
        circuit: &Circuit,
        voltages: &[f64],
        gmin: f64,
    ) -> Option<(Vec<f64>, Vec<SmallSignalParams>)> {
        let mut mna = MnaSystem::new(circuit.node_count(), circuit.voltage_source_count());
        let mut vsrc_idx = 0;
        let mut mos_params = Vec::new();
        for element in circuit.elements() {
            match element {
                Element::Resistor { a, b, ohms } => {
                    mna.stamp_conductance(*a, *b, 1.0 / ohms);
                }
                Element::Capacitor { .. } => {
                    // Open circuit in DC.
                }
                Element::CurrentSource { from, to, amps } => {
                    mna.stamp_current(*from, *to, *amps);
                }
                Element::VoltageSource { plus, minus, volts } => {
                    mna.stamp_voltage_source(vsrc_idx, *plus, *minus, *volts);
                    vsrc_idx += 1;
                }
                Element::Vccs {
                    out_plus,
                    out_minus,
                    ctrl_plus,
                    ctrl_minus,
                    gm,
                } => {
                    mna.stamp_vccs(*out_plus, *out_minus, *ctrl_plus, *ctrl_minus, *gm);
                }
                Element::Mosfet {
                    drain,
                    gate,
                    source,
                    transistor,
                } => {
                    let vg = voltages[*gate];
                    let vd = voltages[*drain];
                    let vs = voltages[*source];
                    let p = transistor.evaluate(vg, vd, vs);
                    mos_params.push(p);
                    // Companion model: gds between drain and source, gm-controlled
                    // current source (gate-source controls drain-source), and an
                    // equivalent current source carrying the residual current.
                    mna.stamp_conductance(*drain, *source, p.gds);
                    mna.stamp_vccs(*drain, *source, *gate, *source, p.gm);
                    let vgs = vg - vs;
                    let vds = vd - vs;
                    let i_eq = p.ids - p.gm * vgs - p.gds * vds;
                    // i_eq flows from drain to source inside the device.
                    mna.stamp_current(*drain, *source, i_eq);
                }
            }
        }
        mna.stamp_gmin(gmin);
        let solution = mna.solve()?;
        Some((solution[..circuit.node_count()].to_vec(), mos_params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{MosTransistor, MosfetModel, OperatingRegion};
    use crate::netlist::GROUND;

    #[test]
    fn linear_divider_converges_immediately() {
        let mut ckt = Circuit::new();
        let vin = ckt.add_node();
        let mid = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vin,
            minus: GROUND,
            volts: 1.8,
        });
        ckt.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 10e3,
        });
        ckt.add(Element::Resistor {
            a: mid,
            b: GROUND,
            ohms: 30e3,
        });
        let sol = DcAnalysis::new().solve(&ckt).unwrap();
        assert!((sol.voltage(mid) - 1.35).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_settles_at_vgs_for_current() {
        // Current source pulls 50 µA through a diode-connected NMOS.
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node();
        let d = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vdd,
            minus: GROUND,
            volts: 1.8,
        });
        ckt.add(Element::Resistor {
            a: vdd,
            b: d,
            ohms: 20e3,
        });
        let m = MosTransistor::new(MosfetModel::nmos_180nm(), 20e-6, 1e-6);
        ckt.add(Element::Mosfet {
            drain: d,
            gate: d,
            source: GROUND,
            transistor: m,
        });
        let sol = DcAnalysis::new().solve(&ckt).unwrap();
        let vd = sol.voltage(d);
        // Expected: Vgs such that Id = (1.8 - Vgs)/20k; solve approximately.
        assert!(vd > 0.45 && vd < 1.0, "diode voltage {vd}");
        let id = (1.8 - vd) / 20e3;
        let expected_vgs = m.vgs_for_current(id);
        assert!(
            (vd - expected_vgs).abs() < 0.05,
            "vd {vd} vs expected {expected_vgs}"
        );
        assert_eq!(sol.mosfet_params[0].region, OperatingRegion::Saturation);
    }

    #[test]
    fn nmos_current_mirror_copies_current() {
        // Reference branch: 40 µA into a diode-connected NMOS; mirror output drives
        // a resistor from VDD.
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node();
        let gate = ckt.add_node();
        let out = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vdd,
            minus: GROUND,
            volts: 1.8,
        });
        ckt.add(Element::CurrentSource {
            from: vdd,
            to: gate,
            amps: 40e-6,
        });
        let m = MosTransistor::new(MosfetModel::nmos_180nm(), 20e-6, 1e-6);
        ckt.add(Element::Mosfet {
            drain: gate,
            gate,
            source: GROUND,
            transistor: m,
        });
        ckt.add(Element::Mosfet {
            drain: out,
            gate,
            source: GROUND,
            transistor: m,
        });
        ckt.add(Element::Resistor {
            a: vdd,
            b: out,
            ohms: 10e3,
        });
        let sol = DcAnalysis::new().solve(&ckt).unwrap();
        // Mirror output current ≈ 40 µA → drop across 10 kΩ ≈ 0.4 V.
        let vout = sol.voltage(out);
        let i_out = (1.8 - vout) / 10e3;
        assert!(
            (i_out - 40e-6).abs() / 40e-6 < 0.1,
            "mirrored current {i_out}"
        );
    }

    #[test]
    fn common_source_amplifier_bias() {
        // NMOS common-source stage with resistive load; verify the output sits
        // between the rails and the device is in saturation.
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node();
        let gate = ckt.add_node();
        let out = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: vdd,
            minus: GROUND,
            volts: 1.8,
        });
        ckt.add(Element::VoltageSource {
            plus: gate,
            minus: GROUND,
            volts: 0.7,
        });
        ckt.add(Element::Resistor {
            a: vdd,
            b: out,
            ohms: 15e3,
        });
        let m = MosTransistor::new(MosfetModel::nmos_180nm(), 10e-6, 1e-6);
        ckt.add(Element::Mosfet {
            drain: out,
            gate,
            source: GROUND,
            transistor: m,
        });
        let sol = DcAnalysis::new().solve(&ckt).unwrap();
        let vout = sol.voltage(out);
        assert!(vout > 0.1 && vout < 1.7, "output voltage {vout}");
        // Current through the load equals the device current.
        let i_load = (1.8 - vout) / 15e3;
        assert!((i_load - sol.mosfet_params[0].ids).abs() < 1e-6);
    }

    #[test]
    fn floating_node_reports_singular_or_converges_to_zero() {
        // A node with only a capacitor to ground is floating in DC; gmin stepping
        // defines it to 0 V instead of failing.
        let mut ckt = Circuit::new();
        let a = ckt.add_node();
        let b = ckt.add_node();
        ckt.add(Element::VoltageSource {
            plus: a,
            minus: GROUND,
            volts: 1.0,
        });
        ckt.add(Element::Capacitor {
            a: b,
            b: GROUND,
            farads: 1e-12,
        });
        ckt.add(Element::Resistor {
            a,
            b: GROUND,
            ohms: 1e3,
        });
        let sol = DcAnalysis::new().solve(&ckt).unwrap();
        assert!(sol.voltage(b).abs() < 1e-6);
    }
}
