//! The declarative testbench layer: design-space mapping, circuit build,
//! analyses and measured metrics behind one trait, plus the PVT
//! corner-sweep combinator that expands a testbench into a family of
//! corner variants.
//!
//! A [`Testbench`] owns everything one evaluation needs — the bounds of
//! its physical design space, the netlist/MNA build, the analyses to run
//! and the metrics it measures — and exposes them through a single
//! corner-aware entry point, [`Testbench::measure`].  [`CornerSweep`]
//! composes a testbench with a list of [`PvtCorner`]s and a pluggable
//! [`CornerAggregation`], turning "one design point" into "K corner
//! measurements folded into one verdict".
//!
//! Failure is explicit everywhere: a corner whose analyses do not converge
//! (or measure something non-finite) surfaces as an `Err` naming the
//! corner — never as a `NaN` smuggled through an aggregation.

use crate::pvt::PvtCorner;

/// The context of one corner evaluation inside a sweep: the corner itself
/// plus its stable position in the sweep's corner list.
///
/// The index is part of the context because some benches derive
/// deterministic per-corner disagreement from it (the charge pump's
/// Pelgrom-style mirror-mismatch sign): evaluating corner `k` through a
/// sweep must reproduce exactly what a monolithic loop over the same
/// corner list would compute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerContext {
    /// The PVT corner to build the circuit under.
    pub corner: PvtCorner,
    /// The corner's position in the sweep's corner list.
    pub index: usize,
}

impl CornerContext {
    /// Context for corner `index` of a sweep.
    pub fn new(corner: PvtCorner, index: usize) -> Self {
        CornerContext { corner, index }
    }

    /// The nominal corner as a single-corner context — what "no sweep"
    /// means: measuring a bench under this context is the bench's plain
    /// evaluation.
    pub fn nominal() -> Self {
        CornerContext::new(PvtCorner::nominal(), 0)
    }
}

/// A declarative circuit testbench: one type owning its design-space
/// mapping, its netlist/MNA build, the analyses it runs and the metrics it
/// measures.
///
/// Implementations must be deterministic and corner-pure: measuring the
/// same physical point under the same [`CornerContext`] always produces
/// the same output, and the context is the *only* PVT input (a bench
/// holding its own corner list must ignore it here).  That purity is what
/// lets [`CornerSweep`] — and the batched sweep evaluation in `nnbo-core`
/// — fan corners out over worker threads with bit-identical results.
pub trait Testbench: Sync {
    /// The measured output of one corner evaluation.
    type Output: Clone + Send + 'static;

    /// A short human-readable name used in reports.
    fn name(&self) -> &str;

    /// Lower/upper bounds of every physical design variable.
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// Dimension of the design space.
    fn dim(&self) -> usize {
        self.bounds().len()
    }

    /// Maps a point of the unit hypercube onto the physical design space
    /// (affine per coordinate, clamped to `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        let bounds = self.bounds();
        assert_eq!(
            x.len(),
            bounds.len(),
            "expected {} design variables",
            bounds.len()
        );
        bounds
            .iter()
            .zip(x.iter())
            .map(|((lo, hi), t)| lo + t.clamp(0.0, 1.0) * (hi - lo))
            .collect()
    }

    /// Builds the circuit at a *physical* design point under the given
    /// corner context, runs the analyses and measures the output —
    /// reporting failure (non-convergence, non-finite measurements)
    /// honestly.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the analyses fail or measure something
    /// non-finite at this corner.
    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<Self::Output, String>;

    /// [`Testbench::measure`] at a point in normalised `[0, 1]`
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Testbench::measure`].
    fn measure_normalized(&self, x: &[f64], ctx: &CornerContext) -> Result<Self::Output, String> {
        self.measure(&self.denormalize(x), ctx)
    }
}

/// Measured outputs that can fold corner-wise into a worst-case summary.
///
/// "Worst" is metric-specific (a gain pessimises downwards, a current
/// spread upwards), so the output type defines the fold itself; the fold
/// must be associative enough for a left-to-right sweep (componentwise
/// `min`/`max` folds are).
pub trait CornerOutput: Clone {
    /// The componentwise worst case of two corner measurements.
    fn fold_worst(&self, other: &Self) -> Self;

    /// `true` when every measured metric is finite.
    fn all_finite(&self) -> bool;
}

/// How a [`CornerSweep`] combines its per-corner measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CornerAggregation {
    /// Fold every corner's measurement into the componentwise worst case
    /// (the paper's charge-pump setting, eq. 15–16).
    WorstCase,
    /// Measure only the sweep's nominal corner — the sweep degenerates to
    /// the plain testbench.
    Nominal,
    /// Keep every corner's measurement, in corner order, for consumers
    /// that enforce their specification *per corner* (the
    /// per-corner-constraints aggregation of `nnbo-core`'s sweep
    /// problems).
    PerCorner,
}

/// The result of an aggregated sweep: one folded measurement, or every
/// corner's measurement in corner order (see [`CornerAggregation`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepMeasurement<O> {
    /// One combined measurement (`WorstCase` / `Nominal`).
    Folded(O),
    /// Every corner's measurement, in corner order (`PerCorner`).
    PerCorner(Vec<O>),
}

impl<O> SweepMeasurement<O> {
    /// The folded measurement, when the aggregation produced one.
    pub fn folded(&self) -> Option<&O> {
        match self {
            SweepMeasurement::Folded(o) => Some(o),
            SweepMeasurement::PerCorner(_) => None,
        }
    }

    /// The per-corner measurements, when the aggregation kept them.
    pub fn per_corner(&self) -> Option<&[O]> {
        match self {
            SweepMeasurement::Folded(_) => None,
            SweepMeasurement::PerCorner(os) => Some(os),
        }
    }
}

/// A testbench expanded over a list of PVT corners with a pluggable
/// aggregation: the declarative form of "evaluate this circuit at K
/// corners and take the worst case".
///
/// The sweep itself is sequential and allocation-light — it is the
/// *reference semantics*.  `nnbo-core`'s `SweepProblem` fans the same
/// per-corner calls out over the process-wide worker pool and is
/// test-pinned to agree with this sequential path bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerSweep<T> {
    bench: T,
    corners: Vec<PvtCorner>,
    aggregation: CornerAggregation,
}

impl<T: Testbench> CornerSweep<T> {
    /// Expands `bench` over `corners` with the [`CornerAggregation::WorstCase`]
    /// aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `corners` is empty.
    pub fn new(bench: T, corners: Vec<PvtCorner>) -> Self {
        assert!(
            !corners.is_empty(),
            "a corner sweep needs at least one corner"
        );
        CornerSweep {
            bench,
            corners,
            aggregation: CornerAggregation::WorstCase,
        }
    }

    /// The sweep over the standard 18 corners of the paper's charge-pump
    /// experiment ([`PvtCorner::standard_18`]).
    pub fn standard_18(bench: T) -> Self {
        Self::new(bench, PvtCorner::standard_18())
    }

    /// Replaces the aggregation.
    pub fn with_aggregation(mut self, aggregation: CornerAggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// The underlying testbench.
    pub fn bench(&self) -> &T {
        &self.bench
    }

    /// The corners this sweep evaluates, in sweep order.
    pub fn corners(&self) -> &[PvtCorner] {
        &self.corners
    }

    /// The configured aggregation.
    pub fn aggregation(&self) -> CornerAggregation {
        self.aggregation
    }

    /// Index of the sweep's nominal corner: the first corner equal to
    /// [`PvtCorner::nominal`], or corner 0 when the nominal corner is not
    /// part of the sweep.
    pub fn nominal_index(&self) -> usize {
        self.corners
            .iter()
            .position(|c| *c == PvtCorner::nominal())
            .unwrap_or(0)
    }

    /// Measures corner `k` at a physical design point.
    ///
    /// # Errors
    ///
    /// The bench's failure reason, prefixed with the corner it happened at.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn run_corner(&self, x: &[f64], k: usize) -> Result<T::Output, String> {
        let corner = self.corners[k];
        self.bench
            .measure(x, &CornerContext::new(corner, k))
            .map_err(|reason| self.label_failure(k, &reason))
    }

    /// Measures every corner sequentially at a physical design point, in
    /// corner order — the bit-identity reference for any parallel fan-out.
    /// Per-corner failures are kept per corner (labelled with the corner).
    pub fn measure_corners(&self, x: &[f64]) -> Vec<Result<T::Output, String>> {
        (0..self.corners.len())
            .map(|k| self.run_corner(x, k))
            .collect()
    }

    /// Prefixes a corner failure with the corner it happened at, so an
    /// aggregated failure still names the culprit.
    fn label_failure(&self, k: usize, reason: &str) -> String {
        format!(
            "corner {} ({}/{}) failed: {reason}",
            self.corners[k],
            k + 1,
            self.corners.len()
        )
    }
}

impl<T> CornerSweep<T>
where
    T: Testbench,
    T::Output: CornerOutput,
{
    /// Runs the sweep at a physical design point and applies the
    /// configured aggregation.
    ///
    /// `Nominal` measures only the nominal corner; `WorstCase` folds every
    /// corner left to right in corner order (deterministic); `PerCorner`
    /// returns every measurement.  A failing corner fails the whole sweep
    /// with the corner named — a failed corner is never silently dropped
    /// or replaced by a non-finite placeholder.
    ///
    /// # Errors
    ///
    /// The first failing corner's labelled reason, in corner order.
    pub fn measure(&self, x: &[f64]) -> Result<SweepMeasurement<T::Output>, String> {
        match self.aggregation {
            CornerAggregation::Nominal => self
                .run_corner(x, self.nominal_index())
                .map(SweepMeasurement::Folded),
            CornerAggregation::WorstCase => {
                let mut worst = self.run_corner(x, 0)?;
                for k in 1..self.corners.len() {
                    worst = worst.fold_worst(&self.run_corner(x, k)?);
                }
                Ok(SweepMeasurement::Folded(worst))
            }
            CornerAggregation::PerCorner => {
                let outputs = self
                    .measure_corners(x)
                    .into_iter()
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(SweepMeasurement::PerCorner(outputs))
            }
        }
    }

    /// [`CornerSweep::measure`] at a point in normalised `[0, 1]`
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CornerSweep::measure`].
    pub fn measure_normalized(&self, x: &[f64]) -> Result<SweepMeasurement<T::Output>, String> {
        self.measure(&self.bench.denormalize(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chargepump::ChargePump;
    use crate::opamp::TwoStageOpAmp;
    use crate::pvt::Process;

    #[test]
    fn denormalize_default_is_the_affine_clamped_map() {
        let bench = TwoStageOpAmp::new();
        let x = [0.3, 0.5, 0.7, 0.2, 0.6, 0.4, 0.8, 0.5, 0.35, 0.45];
        let via_trait = Testbench::denormalize(&bench, &x);
        let inherent = bench.denormalize(&x);
        assert_eq!(via_trait.as_slice(), inherent.as_slice());
        // Clamping matches too.
        let clamped = Testbench::denormalize(&bench, &[-1.0; 10]);
        assert_eq!(clamped, bench.denormalize(&[0.0; 10]).to_vec());
    }

    #[test]
    fn nominal_context_measurement_equals_the_plain_bench() {
        let bench = TwoStageOpAmp::new();
        let x = bench.denormalize(&[0.5; 10]);
        let plain = bench.try_evaluate(&x).unwrap();
        let via_ctx = bench.measure(&x, &CornerContext::nominal()).unwrap();
        assert_eq!(plain, via_ctx);
    }

    #[test]
    fn nominal_aggregation_degenerates_to_the_plain_bench() {
        let bench = TwoStageOpAmp::new();
        let sweep = CornerSweep::standard_18(TwoStageOpAmp::new())
            .with_aggregation(CornerAggregation::Nominal);
        let x = bench.denormalize(&[0.4; 10]);
        // standard_18 does not contain the exact nominal corner (1.10 V but
        // -40/125 °C only), so the nominal index falls back to corner 0.
        assert_eq!(sweep.nominal_index(), 0);
        let folded = sweep.measure(&x).unwrap();
        assert_eq!(folded.folded().unwrap(), &sweep.run_corner(&x, 0).unwrap());

        let single = CornerSweep::new(TwoStageOpAmp::new(), vec![PvtCorner::nominal()])
            .with_aggregation(CornerAggregation::Nominal);
        let folded = single.measure(&x).unwrap();
        assert_eq!(folded.folded().unwrap(), &bench.try_evaluate(&x).unwrap());
    }

    #[test]
    fn worst_case_fold_is_no_better_than_any_single_corner() {
        let sweep = CornerSweep::standard_18(TwoStageOpAmp::new());
        let x = sweep.bench().denormalize(&[0.6; 10]);
        let worst = match sweep.measure(&x).unwrap() {
            SweepMeasurement::Folded(o) => o,
            SweepMeasurement::PerCorner(_) => unreachable!(),
        };
        for k in 0..sweep.corners().len() {
            let single = sweep.run_corner(&x, k).unwrap();
            assert!(worst.gain_db <= single.gain_db + 1e-12);
            assert!(worst.ugf_hz <= single.ugf_hz + 1e-3);
            assert!(worst.pm_deg <= single.pm_deg + 1e-12);
            assert!(worst.power_w >= single.power_w - 1e-18);
        }
    }

    #[test]
    fn per_corner_aggregation_returns_every_corner_in_order() {
        let sweep = CornerSweep::standard_18(ChargePump::new())
            .with_aggregation(CornerAggregation::PerCorner);
        let x = sweep.bench().denormalize(&[0.5; 36]);
        let all = match sweep.measure(&x).unwrap() {
            SweepMeasurement::PerCorner(os) => os,
            SweepMeasurement::Folded(_) => unreachable!(),
        };
        assert_eq!(all.len(), 18);
        for (k, o) in all.iter().enumerate() {
            assert_eq!(*o, sweep.run_corner(&x, k).unwrap());
        }
    }

    #[test]
    fn a_failing_corner_fails_the_sweep_naming_the_corner() {
        // The stressed op-amp fails at every corner; the error must name
        // the first one.
        let sweep = CornerSweep::new(
            TwoStageOpAmp::stressed(),
            vec![
                PvtCorner {
                    process: Process::SlowSlow,
                    vdd: 0.99,
                    temperature: -40.0,
                },
                PvtCorner::nominal(),
            ],
        );
        let x = sweep.bench().denormalize(&[0.5; 10]);
        let err = sweep.measure(&x).unwrap_err();
        assert!(err.contains("corner SS/0.99V/-40C (1/2) failed"), "{err}");
        assert!(err.contains("singular"), "{err}");
    }

    #[test]
    fn sweep_measurement_accessors() {
        let folded: SweepMeasurement<f64> = SweepMeasurement::Folded(1.0);
        assert_eq!(folded.folded(), Some(&1.0));
        assert!(folded.per_corner().is_none());
        let per: SweepMeasurement<f64> = SweepMeasurement::PerCorner(vec![1.0, 2.0]);
        assert!(per.folded().is_none());
        assert_eq!(per.per_corner(), Some(&[1.0, 2.0][..]));
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn empty_corner_list_is_rejected() {
        let _ = CornerSweep::new(TwoStageOpAmp::new(), Vec::new());
    }
}
