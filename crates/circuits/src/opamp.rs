//! Two-stage Miller-compensated operational amplifier testbench (Table I circuit).

use serde::{Deserialize, Serialize};

use crate::ac::{AcAnalysis, AcSweep, SmallSignalCircuit, SmallSignalElement};
use crate::mosfet::{MosTransistor, MosfetModel};
use crate::netlist::GROUND;
use crate::pvt::PvtCorner;
use crate::testbench::{CornerContext, CornerOutput, Testbench};

/// Number of design variables of the op-amp sizing problem.
pub const OPAMP_DIM: usize = 10;

/// Measured performances of one op-amp design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpAmpPerformance {
    /// Open-loop DC gain in dB.
    pub gain_db: f64,
    /// Unity-gain frequency in Hz.
    pub ugf_hz: f64,
    /// Phase margin in degrees.
    pub pm_deg: f64,
    /// Static power consumption in watts.
    pub power_w: f64,
    /// Total active gate area in m².
    pub area_m2: f64,
    /// `true` when every transistor has positive saturation headroom at the bias
    /// point (designs without headroom get strongly degraded gain, mimicking devices
    /// falling out of saturation).
    pub bias_ok: bool,
}

/// The two-stage operational amplifier sizing testbench used for Table I.
///
/// The amplifier is the classic Miller-compensated two-stage OTA of the paper's
/// Fig. 3: an NMOS differential pair (M1/M2) with PMOS current-mirror load (M3/M4),
/// an NMOS tail source (M5) mirrored from the external `Ibias` reference, a PMOS
/// common-source second stage (M6) loaded by an NMOS sink (M7), and an
/// `R1`–`Cc` compensation branch driving the load capacitance `CL`.
///
/// The 10 design variables are
/// `[W1, L1, W3, L3, W5, L5, W6, L6, Cc, Ibias]` (widths/lengths in metres, `Cc` in
/// farads, `Ibias` in amperes).  [`TwoStageOpAmp::bounds`] gives the search ranges;
/// [`TwoStageOpAmp::evaluate_normalized`] accepts points in the unit hypercube.
///
/// The bias point is computed analytically from the current-mirror topology
/// (square-law model), then the full small-signal circuit — including device
/// capacitances, the Miller branch and the zero-nulling resistor — is swept with the
/// complex-MNA [`AcAnalysis`] to obtain GAIN, UGF and phase margin.
///
/// # Example
///
/// ```
/// use nnbo_circuits::TwoStageOpAmp;
///
/// let bench = TwoStageOpAmp::new();
/// let perf = bench.evaluate_normalized(&[0.5; 10]);
/// assert!(perf.gain_db > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageOpAmp {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Load capacitance in farads.
    pub load_cap: f64,
    /// Zero-nulling resistor in series with the compensation capacitor, in ohms.
    pub comp_resistor: f64,
    /// Aspect ratio of the fixed bias-mirror diode device (W8/L8).
    pub bias_mirror_ratio: f64,
    /// Current multiplication factor from the tail device (M5) to the output-stage
    /// sink (M7).
    pub output_stage_multiplier: f64,
    nmos: MosfetModel,
    pmos: MosfetModel,
}

impl Default for TwoStageOpAmp {
    fn default() -> Self {
        TwoStageOpAmp {
            vdd: 1.8,
            load_cap: 10e-12,
            comp_resistor: 1.0e3,
            bias_mirror_ratio: 10.0,
            output_stage_multiplier: 3.0,
            nmos: MosfetModel::nmos_180nm(),
            pmos: MosfetModel::pmos_180nm(),
        }
    }
}

impl TwoStageOpAmp {
    /// Creates the testbench with the default 180 nm-like setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// A corner-stress fixture: a deliberately broken compensation network
    /// (zero-ohm nulling resistor, i.e. an infinite conductance entry) that
    /// makes the small-signal MNA system singular at *every* design point.
    ///
    /// [`TwoStageOpAmp::try_evaluate`] therefore fails deterministically on
    /// this bench — use it to exercise failure-handling paths (retry,
    /// imputation, degradation) without randomness.
    pub fn stressed() -> Self {
        TwoStageOpAmp {
            comp_resistor: 0.0,
            ..Self::default()
        }
    }

    /// The same amplifier re-biased under a PVT corner: the supply scales
    /// with the corner's deviation from the nominal 1.1 V rail, and both
    /// device models take the corner's transconductance factor and
    /// threshold shift.
    ///
    /// At [`PvtCorner::nominal`] this returns `self` exactly (all the
    /// corner factors are the multiplicative/additive identities there),
    /// so a nominal-corner measurement is bit-identical to the plain
    /// bench.
    pub fn at_corner(&self, corner: &PvtCorner) -> TwoStageOpAmp {
        let nominal_vdd = PvtCorner::nominal().vdd;
        let mut bench = self.clone();
        bench.vdd = self.vdd * (corner.vdd / nominal_vdd);
        bench.nmos.kp = self.nmos.kp * corner.kp_factor();
        bench.pmos.kp = self.pmos.kp * corner.kp_factor();
        bench.nmos.vth = self.nmos.vth + corner.vth_shift();
        bench.pmos.vth = self.pmos.vth + corner.vth_shift();
        bench
    }

    /// Lower/upper bounds of the 10 physical design variables
    /// `[W1, L1, W3, L3, W5, L5, W6, L6, Cc, Ibias]`.
    pub fn bounds(&self) -> [(f64, f64); OPAMP_DIM] {
        [
            (1e-6, 100e-6),    // W1: differential pair width
            (0.18e-6, 2e-6),   // L1
            (1e-6, 100e-6),    // W3: mirror-load width
            (0.18e-6, 2e-6),   // L3
            (2e-6, 200e-6),    // W5: tail width
            (0.18e-6, 2e-6),   // L5
            (2e-6, 500e-6),    // W6: second-stage width
            (0.18e-6, 2e-6),   // L6
            (0.5e-12, 10e-12), // Cc
            (2e-6, 50e-6),     // Ibias
        ]
    }

    /// Maps a point of the unit hypercube to the physical design space.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10`.
    pub fn denormalize(&self, x: &[f64]) -> [f64; OPAMP_DIM] {
        assert_eq!(x.len(), OPAMP_DIM, "expected {OPAMP_DIM} design variables");
        let bounds = self.bounds();
        let mut out = [0.0; OPAMP_DIM];
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            let t = x[i].clamp(0.0, 1.0);
            out[i] = lo + t * (hi - lo);
        }
        out
    }

    /// Evaluates a design given in normalised `[0, 1]` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10`.
    pub fn evaluate_normalized(&self, x: &[f64]) -> OpAmpPerformance {
        self.evaluate(&self.denormalize(x))
    }

    /// Evaluates a design given in physical units.
    ///
    /// This is the infallible best-effort projection: when the small-signal
    /// AC analysis fails (singular MNA system) the frequency-domain metrics
    /// are replaced by a deep penalty (−100 dB gain, no unity-gain crossing).
    /// Use [`TwoStageOpAmp::try_evaluate`] to observe such failures honestly.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10` or any variable is not strictly positive.
    pub fn evaluate(&self, x: &[f64]) -> OpAmpPerformance {
        let (metrics, power_w, area_m2, bias_ok) = self.analyze(x);
        let metrics = metrics.unwrap_or(crate::ac::BodeMetrics {
            dc_gain_db: -100.0,
            unity_gain_freq_hz: 0.0,
            phase_margin_deg: 0.0,
            crossed_unity: false,
        });
        Self::performance(metrics, power_w, area_m2, bias_ok)
    }

    /// Evaluates a design given in physical units, reporting solver failure
    /// honestly instead of projecting it onto a penalty performance.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the small-signal MNA system is
    /// singular (the AC sweep has no valid point) or the analysis produces a
    /// non-finite performance.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10` or any variable is not strictly positive.
    pub fn try_evaluate(&self, x: &[f64]) -> Result<OpAmpPerformance, String> {
        let (metrics, power_w, area_m2, bias_ok) = self.analyze(x);
        let metrics = metrics.ok_or_else(|| {
            "AC analysis failed: singular small-signal MNA system (no valid sweep point)"
                .to_string()
        })?;
        let p = Self::performance(metrics, power_w, area_m2, bias_ok);
        if !(p.gain_db.is_finite()
            && p.ugf_hz.is_finite()
            && p.pm_deg.is_finite()
            && p.power_w.is_finite()
            && p.area_m2.is_finite())
        {
            return Err(format!(
                "AC analysis produced a non-finite performance: {p:?}"
            ));
        }
        Ok(p)
    }

    /// Fallible evaluation of a design in normalised `[0, 1]` coordinates —
    /// see [`TwoStageOpAmp::try_evaluate`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TwoStageOpAmp::try_evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10`.
    pub fn try_evaluate_normalized(&self, x: &[f64]) -> Result<OpAmpPerformance, String> {
        self.try_evaluate(&self.denormalize(x))
    }

    /// Assembles the performance report from the AC metrics and the
    /// bias-point quantities.
    fn performance(
        metrics: crate::ac::BodeMetrics,
        power_w: f64,
        area_m2: f64,
        bias_ok: bool,
    ) -> OpAmpPerformance {
        OpAmpPerformance {
            gain_db: metrics.dc_gain_db,
            ugf_hz: metrics.unity_gain_freq_hz,
            pm_deg: if metrics.crossed_unity {
                metrics.phase_margin_deg
            } else {
                0.0
            },
            power_w,
            area_m2,
            bias_ok,
        }
    }

    /// Bias-point computation plus the small-signal AC sweep; `None` metrics
    /// mean the MNA system was singular at every frequency.
    fn analyze(&self, x: &[f64]) -> (Option<crate::ac::BodeMetrics>, f64, f64, bool) {
        assert_eq!(x.len(), OPAMP_DIM, "expected {OPAMP_DIM} design variables");
        assert!(
            x.iter().all(|v| *v > 0.0),
            "design variables must be positive"
        );
        let (w1, l1, w3, l3, w5, l5, w6, l6, cc, ibias) =
            (x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7], x[8], x[9]);

        // --- Bias point from the mirror topology (square-law). -----------------
        let m1 = MosTransistor::new(self.nmos, w1, l1);
        let m3 = MosTransistor::new(self.pmos, w3, l3);
        let m5 = MosTransistor::new(self.nmos, w5, l5);
        let m6 = MosTransistor::new(self.pmos, w6, l6);
        let m7 = MosTransistor::new(self.nmos, w5 * self.output_stage_multiplier, l5);

        // Tail current mirrored from the fixed diode reference (W8/L8 = bias_mirror_ratio).
        let i_tail = ibias * m5.aspect_ratio() / self.bias_mirror_ratio;
        let i_branch = 0.5 * i_tail;
        let i_stage2 = i_tail * self.output_stage_multiplier;

        // First stage small-signal parameters.
        let gm1 = m1.gm_for_current(i_branch);
        let gds2 = m1.gds_for_current(i_branch);
        let gds4 = m3.gds_for_current(i_branch);
        // Second stage.
        let gm6 = m6.gm_for_current(i_stage2);
        let gds6 = m6.gds_for_current(i_stage2);
        let gds7 = m7.gds_for_current(i_stage2);

        // Saturation headroom check: overdrives must fit inside the supply.
        let vov1 = m1.overdrive_for_current(i_branch);
        let vov3 = m3.overdrive_for_current(i_branch);
        let vov5 = m5.overdrive_for_current(i_tail);
        let vov6 = m6.overdrive_for_current(i_stage2);
        let vov7 = m7.overdrive_for_current(i_stage2);
        // Input common mode sits at vdd/2; the first stage needs Vov5 + Vgs1 below it
        // and Vov3 + |Vgs6| headroom at the top; the output stage needs Vov6 + Vov7.
        let vgs1 = self.nmos.vth + vov1;
        let headroom_first = (self.vdd / 2.0 - vgs1 - vov5)
            .min(self.vdd / 2.0 - vov3 - 0.05)
            .min(self.vdd - vov6 - vov7 - 0.1);
        let bias_ok = headroom_first > 0.0;
        // Devices pushed out of saturation lose output resistance rapidly; model that
        // as a smooth degradation of the stage output conductances.
        let degrade = if bias_ok {
            1.0
        } else {
            1.0 + (-headroom_first * 40.0).min(200.0)
        };

        let g1 = (gds2 + gds4) * degrade;
        let g2 = (gds6 + gds7) * degrade;

        // Device capacitances at the bias point (saturation expressions).
        let p1 = m1.evaluate(self.nmos.vth + vov1, self.vdd / 2.0, 0.0);
        let p3 = m3.evaluate(self.vdd - self.pmos.vth - vov3, self.vdd / 2.0, self.vdd);
        let p6 = m6.evaluate(self.vdd - self.pmos.vth - vov6, self.vdd / 2.0, self.vdd);
        let p7 = m7.evaluate(self.nmos.vth + vov7, self.vdd / 2.0, 0.0);
        let c_node1 = p1.cgd + p1.cdb + p3.cgd + p3.cdb + p6.cgs;
        let c_node2 = self.load_cap + p6.cdb + p7.cdb + p7.cgd;
        let c_miller_parasitic = p6.cgd;

        // --- Small-signal AC analysis through the MNA engine. ------------------
        // Nodes: 1 = AC input, 2 = first-stage output, 3 = op-amp output,
        // 4 = internal node between the zero-nulling resistor and Cc.
        let mut ss = SmallSignalCircuit::new(5, 1, 3);
        ss.add(SmallSignalElement::Vccs {
            out_plus: 2,
            out_minus: GROUND,
            ctrl_plus: 1,
            ctrl_minus: GROUND,
            gm: gm1,
        });
        ss.add(SmallSignalElement::Conductance {
            a: 2,
            b: GROUND,
            siemens: g1,
        });
        ss.add(SmallSignalElement::Capacitor {
            a: 2,
            b: GROUND,
            farads: c_node1,
        });
        ss.add(SmallSignalElement::Vccs {
            out_plus: 3,
            out_minus: GROUND,
            ctrl_plus: 2,
            ctrl_minus: GROUND,
            gm: gm6,
        });
        ss.add(SmallSignalElement::Conductance {
            a: 3,
            b: GROUND,
            siemens: g2,
        });
        ss.add(SmallSignalElement::Capacitor {
            a: 3,
            b: GROUND,
            farads: c_node2,
        });
        ss.add(SmallSignalElement::Capacitor {
            a: 2,
            b: 3,
            farads: c_miller_parasitic,
        });
        ss.add(SmallSignalElement::Conductance {
            a: 2,
            b: 4,
            siemens: 1.0 / self.comp_resistor,
        });
        ss.add(SmallSignalElement::Capacitor {
            a: 4,
            b: 3,
            farads: cc,
        });

        let analysis = AcAnalysis::new(AcSweep {
            start_hz: 10.0,
            stop_hz: 10e9,
            points_per_decade: 24,
        });
        let metrics = analysis.bode_metrics(&ss);

        let power_w = self.vdd * (ibias + i_tail + i_stage2);
        let area_m2 = w1 * l1 * 2.0
            + w3 * l3 * 2.0
            + w5 * l5 * (1.0 + self.output_stage_multiplier)
            + w6 * l6;

        (metrics, power_w, area_m2, bias_ok)
    }
}

impl Testbench for TwoStageOpAmp {
    type Output = OpAmpPerformance;

    fn name(&self) -> &str {
        "two-stage-opamp"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        TwoStageOpAmp::bounds(self).to_vec()
    }

    fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        TwoStageOpAmp::denormalize(self, x).to_vec()
    }

    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<OpAmpPerformance, String> {
        self.at_corner(&ctx.corner).try_evaluate(x)
    }
}

/// Number of design variables of the bias-network-expanded op-amp problem.
pub const BIASED_OPAMP_DIM: usize = OPAMP_DIM + 3;

/// The bias-network-expanded two-stage op-amp: the same amplifier as
/// [`TwoStageOpAmp`], but with the bias network opened up as three extra
/// design variables — the ROADMAP's "full op-amp + bias networks"
/// high-dimensional scenario.
///
/// The 13 design variables are the 10 sizing variables of
/// [`TwoStageOpAmp::bounds`] followed by
/// `[R_z, bias_mirror_ratio, output_stage_multiplier]`: the zero-nulling
/// resistor of the compensation branch, the aspect ratio of the bias-mirror
/// diode device (which scales the tail current mirrored from `Ibias`), and
/// the current multiplication into the output stage.  On the fixed bench
/// those three are baked-in constants; freeing them couples compensation,
/// biasing and sizing — the zero location, every branch current, the
/// headroom check and the power budget now all move together, which is the
/// cross-coupling a high-dimensional strategy has to untangle.
///
/// Each evaluation instantiates a [`TwoStageOpAmp`] with the three bias
/// parameters applied and measures the 10-D sizing vector on it; at the
/// default settings of `TwoStageOpAmp::new()` the expanded bench reproduces
/// the fixed bench exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasedTwoStageOpAmp {
    /// The base amplifier configuration (supply, load, device models); its
    /// `comp_resistor`, `bias_mirror_ratio` and `output_stage_multiplier` are
    /// overridden per evaluation by the extra design variables.
    pub base: TwoStageOpAmp,
}

impl Default for BiasedTwoStageOpAmp {
    fn default() -> Self {
        BiasedTwoStageOpAmp {
            base: TwoStageOpAmp::new(),
        }
    }
}

impl BiasedTwoStageOpAmp {
    /// Creates the testbench with the default 180 nm-like setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lower/upper bounds of the 13 design variables: the 10 sizing bounds of
    /// [`TwoStageOpAmp::bounds`] followed by the bias network's
    /// `[R_z, bias_mirror_ratio, output_stage_multiplier]`.
    ///
    /// The bias ranges bracket the fixed bench's constants (1 kΩ, 10, 3), so
    /// the expanded search space strictly contains the Table-I problem.
    pub fn bounds(&self) -> [(f64, f64); BIASED_OPAMP_DIM] {
        let sizing = self.base.bounds();
        let mut out = [(0.0, 0.0); BIASED_OPAMP_DIM];
        out[..OPAMP_DIM].copy_from_slice(&sizing);
        out[OPAMP_DIM] = (200.0, 20e3); // R_z: zero-nulling resistor
        out[OPAMP_DIM + 1] = (2.0, 40.0); // bias-mirror diode aspect ratio
        out[OPAMP_DIM + 2] = (1.0, 8.0); // output-stage current multiplier
        out
    }

    /// Maps a point of the unit hypercube to the physical design space.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 13`.
    pub fn denormalize(&self, x: &[f64]) -> [f64; BIASED_OPAMP_DIM] {
        assert_eq!(
            x.len(),
            BIASED_OPAMP_DIM,
            "expected {BIASED_OPAMP_DIM} design variables"
        );
        let bounds = self.bounds();
        let mut out = [0.0; BIASED_OPAMP_DIM];
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            let t = x[i].clamp(0.0, 1.0);
            out[i] = lo + t * (hi - lo);
        }
        out
    }

    /// The fixed bench with this design point's bias network applied.
    fn bench_for(&self, phys: &[f64]) -> TwoStageOpAmp {
        let mut bench = self.base.clone();
        bench.comp_resistor = phys[OPAMP_DIM];
        bench.bias_mirror_ratio = phys[OPAMP_DIM + 1];
        bench.output_stage_multiplier = phys[OPAMP_DIM + 2];
        bench
    }

    /// Evaluates a design given in physical units (best-effort projection,
    /// like [`TwoStageOpAmp::evaluate`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 13` or any variable is not strictly positive.
    pub fn evaluate(&self, x: &[f64]) -> OpAmpPerformance {
        self.bench_for(x).evaluate(&x[..OPAMP_DIM])
    }

    /// Fallible evaluation in physical units — see
    /// [`TwoStageOpAmp::try_evaluate`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TwoStageOpAmp::try_evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 13` or any variable is not strictly positive.
    pub fn try_evaluate(&self, x: &[f64]) -> Result<OpAmpPerformance, String> {
        self.bench_for(x).try_evaluate(&x[..OPAMP_DIM])
    }

    /// Evaluates a design given in normalised `[0, 1]` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 13`.
    pub fn evaluate_normalized(&self, x: &[f64]) -> OpAmpPerformance {
        self.evaluate(&self.denormalize(x))
    }

    /// Fallible evaluation in normalised coordinates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TwoStageOpAmp::try_evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 13`.
    pub fn try_evaluate_normalized(&self, x: &[f64]) -> Result<OpAmpPerformance, String> {
        self.try_evaluate(&self.denormalize(x))
    }
}

impl Testbench for BiasedTwoStageOpAmp {
    type Output = OpAmpPerformance;

    fn name(&self) -> &str {
        "biased-two-stage-opamp"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        BiasedTwoStageOpAmp::bounds(self).to_vec()
    }

    fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        BiasedTwoStageOpAmp::denormalize(self, x).to_vec()
    }

    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<OpAmpPerformance, String> {
        BiasedTwoStageOpAmp {
            base: self.base.at_corner(&ctx.corner),
        }
        .try_evaluate(x)
    }
}

impl CornerOutput for OpAmpPerformance {
    /// Worst case per metric: minimum gain/UGF/phase margin, maximum power
    /// and area, and a bias point that is only OK when *every* corner's is.
    fn fold_worst(&self, other: &Self) -> Self {
        OpAmpPerformance {
            gain_db: self.gain_db.min(other.gain_db),
            ugf_hz: self.ugf_hz.min(other.ugf_hz),
            pm_deg: self.pm_deg.min(other.pm_deg),
            power_w: self.power_w.max(other.power_w),
            area_m2: self.area_m2.max(other.area_m2),
            bias_ok: self.bias_ok && other.bias_ok,
        }
    }

    fn all_finite(&self) -> bool {
        self.gain_db.is_finite()
            && self.ugf_hz.is_finite()
            && self.pm_deg.is_finite()
            && self.power_w.is_finite()
            && self.area_m2.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-crafted, reasonable design point (physical units).
    fn decent_design() -> [f64; OPAMP_DIM] {
        [
            40e-6,  // W1
            1.0e-6, // L1
            20e-6,  // W3
            1.0e-6, // L3
            40e-6,  // W5
            1.0e-6, // L5
            200e-6, // W6
            0.5e-6, // L6
            3e-12,  // Cc
            20e-6,  // Ibias
        ]
    }

    #[test]
    fn decent_design_has_textbook_performance() {
        let bench = TwoStageOpAmp::new();
        let p = bench.evaluate(&decent_design());
        assert!(p.bias_ok, "expected a valid bias point");
        assert!(p.gain_db > 60.0 && p.gain_db < 110.0, "gain {}", p.gain_db);
        assert!(
            p.ugf_hz > 1e6 && p.ugf_hz < 1e9,
            "unity-gain frequency {}",
            p.ugf_hz
        );
        assert!(
            p.pm_deg > 0.0 && p.pm_deg < 120.0,
            "phase margin {}",
            p.pm_deg
        );
        assert!(p.power_w > 0.0 && p.power_w < 10e-3);
    }

    #[test]
    fn ugf_tracks_gm_over_cc() {
        // Doubling Cc should roughly halve the unity-gain frequency.
        let bench = TwoStageOpAmp::new();
        let mut x = decent_design();
        let p1 = bench.evaluate(&x);
        x[8] *= 2.0;
        let p2 = bench.evaluate(&x);
        let ratio = p1.ugf_hz / p2.ugf_hz;
        assert!(ratio > 1.5 && ratio < 2.5, "UGF ratio {ratio}");
    }

    #[test]
    fn longer_channels_increase_gain() {
        let bench = TwoStageOpAmp::new();
        let mut short = decent_design();
        short[1] = 0.2e-6;
        short[3] = 0.2e-6;
        short[7] = 0.2e-6;
        let mut long = decent_design();
        long[1] = 2.0e-6;
        long[3] = 2.0e-6;
        long[7] = 2.0e-6;
        let p_short = bench.evaluate(&short);
        let p_long = bench.evaluate(&long);
        assert!(p_long.gain_db > p_short.gain_db + 6.0);
    }

    #[test]
    fn more_bias_current_costs_power_and_raises_ugf() {
        let bench = TwoStageOpAmp::new();
        let mut low = decent_design();
        low[9] = 5e-6;
        let mut high = decent_design();
        high[9] = 40e-6;
        let p_low = bench.evaluate(&low);
        let p_high = bench.evaluate(&high);
        assert!(p_high.power_w > p_low.power_w * 3.0);
        assert!(p_high.ugf_hz > p_low.ugf_hz);
    }

    #[test]
    fn normalized_evaluation_matches_denormalized() {
        let bench = TwoStageOpAmp::new();
        let x_norm = [0.3, 0.5, 0.7, 0.2, 0.6, 0.4, 0.8, 0.5, 0.35, 0.45];
        let phys = bench.denormalize(&x_norm);
        let a = bench.evaluate_normalized(&x_norm);
        let b = bench.evaluate(&phys);
        assert_eq!(a, b);
    }

    #[test]
    fn bounds_are_ordered_and_positive() {
        let bench = TwoStageOpAmp::new();
        for (lo, hi) in bench.bounds() {
            assert!(lo > 0.0 && hi > lo);
        }
    }

    #[test]
    fn feasible_region_is_reachable() {
        // There must exist designs meeting the Table-I spec (UGF > 40 MHz, PM > 60°)
        // with high gain, otherwise the optimization experiment is vacuous.
        let bench = TwoStageOpAmp::new();
        let x = [
            60e-6, 0.8e-6, 30e-6, 0.9e-6, 30e-6, 1.0e-6, 400e-6, 0.4e-6, 4e-12, 25e-6,
        ];
        let p = bench.evaluate(&x);
        assert!(p.ugf_hz > 40e6, "UGF {} too low", p.ugf_hz);
        assert!(p.pm_deg > 60.0, "PM {} too low", p.pm_deg);
        assert!(p.gain_db > 70.0, "gain {} too low", p.gain_db);
    }

    #[test]
    fn biased_bench_at_default_bias_point_matches_the_fixed_bench() {
        let fixed = TwoStageOpAmp::new();
        let expanded = BiasedTwoStageOpAmp::new();
        let sizing = decent_design();
        let mut x = [0.0; BIASED_OPAMP_DIM];
        x[..OPAMP_DIM].copy_from_slice(&sizing);
        // The fixed bench's constants: R_z = 1 kΩ, mirror ratio 10, multiplier 3.
        x[OPAMP_DIM] = 1.0e3;
        x[OPAMP_DIM + 1] = 10.0;
        x[OPAMP_DIM + 2] = 3.0;
        assert_eq!(expanded.evaluate(&x), fixed.evaluate(&sizing));
    }

    #[test]
    fn bias_variables_actually_move_the_performance() {
        let bench = BiasedTwoStageOpAmp::new();
        let sizing = decent_design();
        let mut base = [0.0; BIASED_OPAMP_DIM];
        base[..OPAMP_DIM].copy_from_slice(&sizing);
        base[OPAMP_DIM] = 1.0e3;
        base[OPAMP_DIM + 1] = 10.0;
        base[OPAMP_DIM + 2] = 3.0;
        let nominal = bench.evaluate(&base);

        // A larger mirror ratio shrinks the tail current → lower power.
        let mut starved = base;
        starved[OPAMP_DIM + 1] = 30.0;
        let p = bench.evaluate(&starved);
        assert!(p.power_w < nominal.power_w);

        // A larger output multiplier burns more power.
        let mut hungry = base;
        hungry[OPAMP_DIM + 2] = 6.0;
        let p = bench.evaluate(&hungry);
        assert!(p.power_w > nominal.power_w);

        // Moving the zero-nulling resistor shifts the phase margin.
        let mut moved = base;
        moved[OPAMP_DIM] = 15e3;
        let p = bench.evaluate(&moved);
        assert_ne!(p.pm_deg, nominal.pm_deg);
    }

    #[test]
    fn biased_bench_bounds_bracket_the_fixed_constants_and_clamp() {
        let bench = BiasedTwoStageOpAmp::new();
        let bounds = bench.bounds();
        assert_eq!(bounds.len(), 13);
        for (lo, hi) in bounds {
            assert!(lo > 0.0 && hi > lo);
        }
        assert!(bounds[OPAMP_DIM].0 <= 1.0e3 && 1.0e3 <= bounds[OPAMP_DIM].1);
        assert!(bounds[OPAMP_DIM + 1].0 <= 10.0 && 10.0 <= bounds[OPAMP_DIM + 1].1);
        assert!(bounds[OPAMP_DIM + 2].0 <= 3.0 && 3.0 <= bounds[OPAMP_DIM + 2].1);
        for x in [[0.0; BIASED_OPAMP_DIM], [1.0; BIASED_OPAMP_DIM]] {
            let p = bench.evaluate_normalized(&x);
            assert!(p.gain_db.is_finite());
            assert!(p.power_w.is_finite());
        }
    }

    #[test]
    fn at_nominal_corner_the_bench_is_bit_identical() {
        let bench = TwoStageOpAmp::new();
        assert_eq!(bench.at_corner(&PvtCorner::nominal()), bench);
    }

    #[test]
    fn corners_actually_move_the_performance() {
        use crate::pvt::Process;
        let bench = TwoStageOpAmp::new();
        let x = decent_design();
        let nominal = bench.try_evaluate(&x).unwrap();
        let slow_cold = bench
            .at_corner(&PvtCorner {
                process: Process::SlowSlow,
                vdd: 0.99,
                temperature: -40.0,
            })
            .try_evaluate(&x)
            .unwrap();
        assert_ne!(nominal, slow_cold);
        assert!(slow_cold.gain_db.is_finite());
    }

    #[test]
    fn extreme_corner_degrades_gracefully() {
        // The most extreme corner of the design space must still produce finite
        // numbers (the optimizer will visit such points).
        let bench = TwoStageOpAmp::new();
        for x in [[0.0; OPAMP_DIM], [1.0; OPAMP_DIM]] {
            let p = bench.evaluate_normalized(&x);
            assert!(p.gain_db.is_finite());
            assert!(p.ugf_hz.is_finite());
            assert!(p.pm_deg.is_finite());
        }
    }
}
