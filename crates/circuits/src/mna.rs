//! Modified nodal analysis (MNA) stamping.

use nnbo_linalg::Matrix;

use crate::netlist::{NodeId, GROUND};

/// A real-valued MNA system `G · x = b`.
///
/// The unknown vector `x` contains the voltages of all non-ground nodes followed by
/// the branch currents of the independent voltage sources.  Elements are added by
/// *stamping* their contributions into the matrix and right-hand side, exactly as a
/// SPICE-class simulator does.
///
/// # Example
///
/// ```
/// use nnbo_circuits::MnaSystem;
///
/// // 1 V source driving two 1 kΩ resistors in series to ground.
/// let mut mna = MnaSystem::new(3, 1);
/// mna.stamp_conductance(1, 2, 1e-3);
/// mna.stamp_conductance(2, 0, 1e-3);
/// mna.stamp_voltage_source(0, 1, 0, 1.0);
/// let x = mna.solve().expect("well-posed system");
/// assert!((x[2] - 0.5).abs() < 1e-9); // node 2 sits at 0.5 V
/// ```
#[derive(Debug, Clone)]
pub struct MnaSystem {
    node_count: usize,
    vsrc_count: usize,
    matrix: Matrix,
    rhs: Vec<f64>,
}

impl MnaSystem {
    /// Creates an empty MNA system for a circuit with `node_count` nodes (including
    /// ground) and `vsrc_count` independent voltage sources.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(node_count: usize, vsrc_count: usize) -> Self {
        assert!(node_count >= 1, "a circuit has at least the ground node");
        let dim = node_count - 1 + vsrc_count;
        MnaSystem {
            node_count,
            vsrc_count,
            matrix: Matrix::zeros(dim, dim),
            rhs: vec![0.0; dim],
        }
    }

    /// Dimension of the unknown vector.
    pub fn dim(&self) -> usize {
        self.node_count - 1 + self.vsrc_count
    }

    /// Borrow of the system matrix (for inspection in tests).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Borrow of the right-hand side.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    fn node_index(&self, node: NodeId) -> Option<usize> {
        if node == GROUND {
            None
        } else {
            assert!(node < self.node_count, "node {node} out of range");
            Some(node - 1)
        }
    }

    /// Row/column index of the branch-current unknown of voltage source `k`.
    pub fn vsrc_index(&self, k: usize) -> usize {
        assert!(k < self.vsrc_count, "voltage source index out of range");
        self.node_count - 1 + k
    }

    /// Stamps a conductance `g` (siemens) between nodes `a` and `b`.
    pub fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        let ia = self.node_index(a);
        let ib = self.node_index(b);
        if let Some(i) = ia {
            self.matrix[(i, i)] += g;
        }
        if let Some(j) = ib {
            self.matrix[(j, j)] += g;
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            self.matrix[(i, j)] -= g;
            self.matrix[(j, i)] -= g;
        }
    }

    /// Stamps an independent current source pushing `amps` from node `from` into
    /// node `to`.
    pub fn stamp_current(&mut self, from: NodeId, to: NodeId, amps: f64) {
        if let Some(i) = self.node_index(from) {
            self.rhs[i] -= amps;
        }
        if let Some(j) = self.node_index(to) {
            self.rhs[j] += amps;
        }
    }

    /// Stamps a voltage-controlled current source: `gm · (V(cp) - V(cm))` flows from
    /// `out_plus` to `out_minus` through the source (i.e. it is injected into
    /// `out_minus`).
    pub fn stamp_vccs(
        &mut self,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_plus: NodeId,
        ctrl_minus: NodeId,
        gm: f64,
    ) {
        let op = self.node_index(out_plus);
        let om = self.node_index(out_minus);
        let cp = self.node_index(ctrl_plus);
        let cm = self.node_index(ctrl_minus);
        for (out, sign_out) in [(op, 1.0), (om, -1.0)] {
            let Some(o) = out else { continue };
            for (ctrl, sign_ctrl) in [(cp, 1.0), (cm, -1.0)] {
                let Some(c) = ctrl else { continue };
                self.matrix[(o, c)] += sign_out * sign_ctrl * gm;
            }
        }
    }

    /// Stamps independent voltage source number `k` (`V(plus) - V(minus) = volts`).
    pub fn stamp_voltage_source(&mut self, k: usize, plus: NodeId, minus: NodeId, volts: f64) {
        let row = self.vsrc_index(k);
        if let Some(p) = self.node_index(plus) {
            self.matrix[(p, row)] += 1.0;
            self.matrix[(row, p)] += 1.0;
        }
        if let Some(m) = self.node_index(minus) {
            self.matrix[(m, row)] -= 1.0;
            self.matrix[(row, m)] -= 1.0;
        }
        self.rhs[row] += volts;
    }

    /// Adds `gmin` from every non-ground node to ground (used by the DC solver's
    /// gmin stepping to aid convergence).
    pub fn stamp_gmin(&mut self, gmin: f64) {
        for i in 0..(self.node_count - 1) {
            self.matrix[(i, i)] += gmin;
        }
    }

    /// Solves the assembled system, returning the full circuit solution indexed by
    /// node id (`result[0]` is ground = 0 V) followed by the voltage-source branch
    /// currents.
    ///
    /// Returns `None` when the matrix is singular (floating nodes, missing ground
    /// return paths, ...).
    pub fn solve(&self) -> Option<Vec<f64>> {
        let lu = nnbo_linalg::Lu::decompose(&self.matrix).ok()?;
        let x = lu.solve_vec(&self.rhs);
        if x.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut full = Vec::with_capacity(self.node_count + self.vsrc_count);
        full.push(0.0);
        full.extend_from_slice(&x);
        Some(full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistive_divider() {
        let mut mna = MnaSystem::new(3, 1);
        mna.stamp_voltage_source(0, 1, GROUND, 2.0);
        mna.stamp_conductance(1, 2, 1.0 / 1000.0);
        mna.stamp_conductance(2, GROUND, 1.0 / 3000.0);
        let x = mna.solve().unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 1.5).abs() < 1e-9);
        // Branch current of the source: V / Rtotal = 2 / 4k = 0.5 mA flowing out.
        let i = x[3];
        assert!((i + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut mna = MnaSystem::new(2, 0);
        mna.stamp_current(GROUND, 1, 1e-3);
        mna.stamp_conductance(1, GROUND, 1e-4);
        let x = mna.solve().unwrap();
        assert!((x[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_acts_as_transconductance() {
        // Node 1 driven to 1 V; VCCS pulls gm*V1 out of node 2 which has a load
        // resistor to ground: V2 = -gm * R * V1.
        let mut mna = MnaSystem::new(3, 1);
        mna.stamp_voltage_source(0, 1, GROUND, 1.0);
        mna.stamp_vccs(2, GROUND, 1, GROUND, 1e-3);
        mna.stamp_conductance(2, GROUND, 1.0 / 10_000.0);
        let x = mna.solve().unwrap();
        assert!((x[2] + 10.0).abs() < 1e-9);
    }

    #[test]
    fn floating_node_is_reported_as_singular() {
        let mut mna = MnaSystem::new(3, 0);
        // Node 2 is left floating: only node 1 has a path to ground.
        mna.stamp_conductance(1, GROUND, 1e-3);
        assert!(mna.solve().is_none());
    }

    #[test]
    fn gmin_stamping_fixes_floating_nodes() {
        let mut mna = MnaSystem::new(3, 0);
        mna.stamp_conductance(1, GROUND, 1e-3);
        mna.stamp_gmin(1e-12);
        let x = mna.solve().unwrap();
        assert!(x[2].abs() < 1e-9);
    }

    #[test]
    fn two_voltage_sources() {
        let mut mna = MnaSystem::new(3, 2);
        mna.stamp_voltage_source(0, 1, GROUND, 1.0);
        mna.stamp_voltage_source(1, 2, GROUND, 3.0);
        mna.stamp_conductance(1, 2, 1e-3);
        let x = mna.solve().unwrap();
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }
}
