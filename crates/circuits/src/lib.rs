//! Analog circuit simulation substrate for the `nnbo` workspace.
//!
//! The paper evaluates its optimizer on two real circuits simulated with HSPICE on
//! SMIC 180nm/40nm PDKs.  Neither the simulator nor the PDKs are available here, so
//! this crate implements the substrate from scratch:
//!
//! * [`Complex`] — complex arithmetic for AC (frequency-domain) analysis;
//! * [`Circuit`] / [`Element`] — netlists of resistors, capacitors, sources,
//!   voltage-controlled current sources and level-1 MOSFETs;
//! * [`MnaSystem`] — modified nodal analysis stamping, real (DC) and complex (AC);
//! * [`DcAnalysis`] — Newton–Raphson operating-point solver with gmin stepping;
//! * [`AcAnalysis`] / [`BodeMetrics`] — small-signal frequency sweeps and the
//!   gain / unity-gain-frequency / phase-margin metrics used by the op-amp spec;
//! * [`MosfetModel`] / [`MosTransistor`] — square-law (level-1) MOSFET model with
//!   channel-length modulation and small-signal extraction;
//! * [`TransientAnalysis`] / [`Waveform`] — fixed-step backward-Euler time-domain
//!   simulation with pulse/sine stimuli;
//! * [`TwoStageOpAmp`] — the Table-I testbench (10 design variables → GAIN/UGF/PM);
//! * [`ChargePump`] + [`PvtCorner`] — the Table-II testbench (36 design variables,
//!   18 PVT corners → current-matching metrics and FOM);
//! * [`Testbench`] / [`CornerSweep`] — the declarative testbench layer and the PVT
//!   corner-sweep combinator (see below).
//!
//! See `DESIGN.md` at the repository root for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use nnbo_circuits::TwoStageOpAmp;
//!
//! let bench = TwoStageOpAmp::new();
//! // A mid-range design point (normalised coordinates in [0,1]^10).
//! let perf = bench.evaluate_normalized(&[0.5; 10]);
//! assert!(perf.gain_db.is_finite());
//! assert!(perf.ugf_hz > 0.0);
//! ```
//!
//! # Testbenches and corner sweeps
//!
//! Circuit problems compose declaratively instead of being hand-wired: a
//! [`Testbench`] owns its design-space mapping (bounds + denormalisation), its
//! netlist/MNA build, the analyses it runs and the metrics it measures, all behind
//! one corner-aware entry point, [`Testbench::measure`].  A [`CornerSweep`] expands
//! one testbench into K [`PvtCorner`] variants with a pluggable
//! [`CornerAggregation`] — [`CornerAggregation::WorstCase`] folds every corner into
//! the componentwise worst case via [`CornerOutput::fold_worst`] (the paper's
//! charge-pump setting), [`CornerAggregation::Nominal`] degenerates to the plain
//! bench, and [`CornerAggregation::PerCorner`] keeps every measurement for
//! per-corner constraint enforcement.  Failed corners surface as errors naming the
//! corner — never as a `NaN` smuggled through an aggregation.
//!
//! A worked op-amp example — worst-case gain/UGF/phase margin of one design over
//! the standard 18 corners:
//!
//! ```
//! use nnbo_circuits::{CornerSweep, SweepMeasurement, Testbench, TwoStageOpAmp};
//!
//! let sweep = CornerSweep::standard_18(TwoStageOpAmp::new());
//! let x = sweep.bench().denormalize(&[0.5; 10]);
//! match sweep.measure(&x).expect("all corners converge at this point") {
//!     SweepMeasurement::Folded(worst) => {
//!         // The fold is pessimistic per metric: min gain/UGF/PM, max power/area.
//!         let nominal = sweep.bench().try_evaluate(&x).unwrap();
//!         assert!(worst.gain_db <= nominal.gain_db);
//!         assert!(worst.power_w >= nominal.power_w);
//!     }
//!     SweepMeasurement::PerCorner(_) => unreachable!("WorstCase folds"),
//! }
//! ```
//!
//! The sequential [`CornerSweep::measure`] is the *reference semantics*; the
//! `SweepProblem` adapter in `nnbo-core` fans the same per-corner measurements out
//! over the process-wide worker pool and is test-pinned to agree with this path bit
//! for bit.

#![warn(missing_docs)]

mod ac;
mod chargepump;
mod complex;
mod dc;
mod mna;
mod mosfet;
mod netlist;
mod opamp;
mod pvt;
mod testbench;
mod tran;

pub use ac::{AcAnalysis, AcSweep, BodeMetrics, SmallSignalCircuit, SmallSignalElement};
pub use chargepump::{
    ChargePump, ChargePumpCornerMeasurement, ChargePumpPerformance, CHARGE_PUMP_DIM,
};
pub use complex::Complex;
pub use dc::{DcAnalysis, DcError, DcSolution};
pub use mna::MnaSystem;
pub use mosfet::{MosPolarity, MosTransistor, MosfetModel, OperatingRegion, SmallSignalParams};
pub use netlist::{Circuit, Element, NodeId, GROUND};
pub use opamp::{
    BiasedTwoStageOpAmp, OpAmpPerformance, TwoStageOpAmp, BIASED_OPAMP_DIM, OPAMP_DIM,
};
pub use pvt::{Process, PvtCorner};
pub use testbench::{
    CornerAggregation, CornerContext, CornerOutput, CornerSweep, SweepMeasurement, Testbench,
};
pub use tran::{TransientAnalysis, TransientResult, Waveform};
