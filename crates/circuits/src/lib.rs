//! Analog circuit simulation substrate for the `nnbo` workspace.
//!
//! The paper evaluates its optimizer on two real circuits simulated with HSPICE on
//! SMIC 180nm/40nm PDKs.  Neither the simulator nor the PDKs are available here, so
//! this crate implements the substrate from scratch:
//!
//! * [`Complex`] — complex arithmetic for AC (frequency-domain) analysis;
//! * [`Circuit`] / [`Element`] — netlists of resistors, capacitors, sources,
//!   voltage-controlled current sources and level-1 MOSFETs;
//! * [`MnaSystem`] — modified nodal analysis stamping, real (DC) and complex (AC);
//! * [`DcAnalysis`] — Newton–Raphson operating-point solver with gmin stepping;
//! * [`AcAnalysis`] / [`BodeMetrics`] — small-signal frequency sweeps and the
//!   gain / unity-gain-frequency / phase-margin metrics used by the op-amp spec;
//! * [`MosfetModel`] / [`MosTransistor`] — square-law (level-1) MOSFET model with
//!   channel-length modulation and small-signal extraction;
//! * [`TransientAnalysis`] / [`Waveform`] — fixed-step backward-Euler time-domain
//!   simulation with pulse/sine stimuli;
//! * [`TwoStageOpAmp`] — the Table-I testbench (10 design variables → GAIN/UGF/PM);
//! * [`ChargePump`] + [`PvtCorner`] — the Table-II testbench (36 design variables,
//!   18 PVT corners → current-matching metrics and FOM).
//!
//! See `DESIGN.md` at the repository root for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use nnbo_circuits::TwoStageOpAmp;
//!
//! let bench = TwoStageOpAmp::new();
//! // A mid-range design point (normalised coordinates in [0,1]^10).
//! let perf = bench.evaluate_normalized(&[0.5; 10]);
//! assert!(perf.gain_db.is_finite());
//! assert!(perf.ugf_hz > 0.0);
//! ```

#![warn(missing_docs)]

mod ac;
mod chargepump;
mod complex;
mod dc;
mod mna;
mod mosfet;
mod netlist;
mod opamp;
mod pvt;
mod tran;

pub use ac::{AcAnalysis, AcSweep, BodeMetrics, SmallSignalCircuit, SmallSignalElement};
pub use chargepump::{ChargePump, ChargePumpPerformance, CHARGE_PUMP_DIM};
pub use complex::Complex;
pub use dc::{DcAnalysis, DcError, DcSolution};
pub use mna::MnaSystem;
pub use mosfet::{MosPolarity, MosTransistor, MosfetModel, OperatingRegion, SmallSignalParams};
pub use netlist::{Circuit, Element, NodeId, GROUND};
pub use opamp::{OpAmpPerformance, TwoStageOpAmp, OPAMP_DIM};
pub use pvt::{Process, PvtCorner};
pub use tran::{TransientAnalysis, TransientResult, Waveform};
